package experiments

import (
	"fmt"
	"time"

	"repro/internal/apps/youtube"
	"repro/internal/core/analyzer"
	"repro/internal/core/controller"
	"repro/internal/core/qoe"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/testbed"
)

// Impairment-sweep defaults: the bursty-loss shape and the mid-playback
// outage window exercised by the robustness acceptance scenario.
const (
	impairAvgBurst    = 4.0
	impairOutageStart = 20 * time.Second
	impairStallGiveUp = 60 * time.Second
)

// impairOutcome is one impaired video playback, measured at every layer.
type impairOutcome struct {
	initialS  float64 // user-perceived initial loading (s)
	rebuffer  float64 // UI-derived rebuffering ratio
	rebuffers int     // distinct stall events
	observed  bool    // playback started at all
	retx      int     // TCP retransmissions across all flows
	energyJ   float64 // active (above-idle) radio energy
	drops     int     // packets the fault chains dropped
	outages   int     // bearer outages that actually occurred
	warnings  int     // analyzer data-quality warnings
}

// impairStart plays one video on a bed configured with the given fault
// plan, measuring the outcome across the UI, transport, and radio layers.
// Both collectors stay on: the point of the sweep is cross-layer
// attribution under impairment. A nonzero throttleBps adds carrier rate
// limiting downstream of the fault chain, keeping the playback buffer
// shallow so bearer outages surface at the UI layer.
//
// The simulation runs synchronously; the cross-layer analysis is launched
// asynchronously and the returned function waits for it. Callers start the
// next cell's simulation before collecting, pipelining sim N+1 over
// analysis N.
func impairStart(seed int64, plan *faults.Plan, throttleBps float64, opts ...analyzer.Option) func() impairOutcome {
	b := testbed.MustNew(testbed.Options{
		Seed:    seed,
		Faults:  plan,
		YouTube: youtube.Config{StallTimeout: impairStallGiveUp},
	})
	b.YouTube.Connect()
	b.K.RunUntil(2 * time.Second)
	if throttleBps > 0 {
		b.Throttle(throttleBps)
	}

	log := &qoe.BehaviorLog{}
	c := controller.New(b.K, b.YouTube.Screen, log)
	c.Timeout = 30 * time.Minute
	c.Instrumentation().SetPollInterval(videoPollInterval)
	d := &controller.YouTubeDriver{C: c}

	var o impairOutcome
	id := videoSample(seed, 1)[0]
	d.SearchAndPlay(id[:1], int(id[1]-'0'), func(st controller.WatchStats) {
		o.observed = st.InitialLoading.Observed
		if o.observed {
			o.initialS = st.InitialLoading.RawLatency().Seconds()
			o.rebuffer = st.RebufferRatio()
			o.rebuffers = len(st.Rebuffers)
		}
	})
	b.K.RunUntil(b.K.Now() + 20*time.Minute)

	sess := b.Session(log)
	pending := analyzer.Analyze(sess, opts...)
	if b.FaultUL != nil {
		o.drops = b.FaultUL.Dropped() + b.FaultDL.Dropped()
	}
	o.outages = b.Net.Bearer.OutageCount()
	end := b.K.Now()
	return func() impairOutcome {
		xl := pending.Wait()
		for _, f := range xl.Flows.Flows {
			o.retx += f.Retransmissions
		}
		o.warnings = len(xl.Warnings)
		o.energyJ = power.Analyze(sess.Profile, sess.Radio, 0, end).ActiveJ()
		return o
	}
}

// RunImpairmentSweep reports QoE degradation as a function of injected
// network impairment: a Gilbert–Elliott loss-rate sweep and a mid-playback
// bearer-outage-duration sweep, each measured at the UI (initial loading,
// rebuffering), transport (TCP retransmissions), and radio (active energy)
// layers. This is not a paper figure: it is the robustness scenario the
// fault-injection subsystem exists for, demonstrating that every layer of
// the pipeline degrades gracefully instead of hanging or crashing.
func RunImpairmentSweep(seed int64, p Params, opts ...analyzer.Option) *Result {
	r := &Result{ID: "faults", Title: "QoE vs injected network impairment (loss and outage sweep)"}

	lossTbl := &metrics.Table{
		Title:   "GE burst loss sweep (avg burst 4, no outage)",
		Headers: []string{"Mean loss", "Init load", "Rebuf ratio", "Stalls", "TCP retx", "Chain drops", "Energy"},
	}
	losses := []float64{0, 0.01, 0.02, 0.05}
	if p.LossRate > 0 {
		losses = []float64{0, p.LossRate}
	}
	// Each cell's simulation overlaps the previous cell's analysis: the
	// starts run back-to-back, the collects drain in order.
	lossFinish := make([]func() impairOutcome, len(losses))
	for i, p := range losses {
		plan := &faults.Plan{}
		if p > 0 {
			ge := faults.GEForMeanLoss(p, impairAvgBurst)
			plan.GE = &ge
		}
		lossFinish[i] = impairStart(seed+int64(i), plan, 0, opts...)
	}
	for i, p := range losses {
		o := lossFinish[i]()
		lossTbl.AddRow(fmtPct(p), fmtS(o.initialS), fmt.Sprintf("%.3f", o.rebuffer),
			fmt.Sprintf("%d", o.rebuffers), fmt.Sprintf("%d", o.retx),
			fmt.Sprintf("%d", o.drops), fmtJ(o.energyJ))
		key := fmt.Sprintf("loss_%.0fpct", p*100)
		r.Set(key+"_init_s", o.initialS)
		r.Set(key+"_rebuf", o.rebuffer)
		r.Set(key+"_retx", float64(o.retx))
		r.Set(key+"_drops", float64(o.drops))
		r.Set(key+"_energy_j", o.energyJ)
	}

	outageTbl := &metrics.Table{
		Title:   "Bearer outage sweep (2% GE loss, 450 kbps throttle, outage at t=20s)",
		Headers: []string{"Outage", "Init load", "Rebuf ratio", "Stalls", "TCP retx", "Outages", "Energy"},
	}
	durations := []time.Duration{0, time.Second, 3 * time.Second, 5 * time.Second}
	outageFinish := make([]func() impairOutcome, len(durations))
	for i, dur := range durations {
		ge := faults.GEForMeanLoss(0.02, impairAvgBurst)
		plan := &faults.Plan{GE: &ge}
		if dur > 0 {
			plan.Outages = []faults.Outage{{Start: impairOutageStart, Duration: dur}}
		}
		outageFinish[i] = impairStart(seed+100+int64(i), plan, p.throttle(450e3), opts...)
	}
	for i, dur := range durations {
		o := outageFinish[i]()
		outageTbl.AddRow(fmt.Sprintf("%v", dur), fmtS(o.initialS),
			fmt.Sprintf("%.3f", o.rebuffer), fmt.Sprintf("%d", o.rebuffers),
			fmt.Sprintf("%d", o.retx), fmt.Sprintf("%d", o.outages), fmtJ(o.energyJ))
		key := fmt.Sprintf("outage_%ds", int(dur/time.Second))
		r.Set(key+"_init_s", o.initialS)
		r.Set(key+"_rebuf", o.rebuffer)
		r.Set(key+"_retx", float64(o.retx))
		r.Set(key+"_stalls", float64(o.rebuffers))
		r.Set(key+"_count", float64(o.outages))
	}

	r.Tables = []*metrics.Table{lossTbl, outageTbl}
	return r
}
