package experiments

import (
	"fmt"
	"time"

	"repro/internal/core/analyzer"

	"repro/internal/apps/youtube"
	"repro/internal/metrics"
	"repro/internal/radio"
	"repro/internal/testbed"
)

// adOutcome captures one playback's loading decomposition. The app-level
// PlaybackStats stand in for the paper's ad-aware UI parsing, which
// measures the ad and the main video separately (§4.2.2).
type adOutcome struct {
	adLoadS    float64
	mainLoadS  float64
	totalLoadS float64
	adPlayed   bool
}

// adsRun plays videos that carry a pre-roll ad, with ads enabled or not.
// The app preloads the main video during the ad only on WiFi (unmetered).
func adsRun(seed int64, prof *radio.Profile, adsEnabled bool, ids []string) []adOutcome {
	b := testbed.MustNew(testbed.Options{
		Seed: seed, Profile: prof,
		YouTube: youtube.Config{
			AdsEnabled:      adsEnabled,
			PreloadDuringAd: prof.Tech == radio.TechWiFi,
		},
		DisableQxDM: true, DisablePcap: true,
	})
	b.YouTube.Connect()
	b.K.RunUntil(2 * time.Second)

	var out []adOutcome
	var run func(i int)
	run = func(i int) {
		if i >= len(ids) {
			return
		}
		v, err := b.Servers.YouTube.Video(ids[i])
		if err != nil {
			run(i + 1)
			return
		}
		b.YouTube.OnPlaybackDone(func(st youtube.PlaybackStats) {
			// "Total loading" is the user's cumulative spinner time: the
			// ad's loading plus the main video's loading (watching the ad
			// itself is not loading).
			out = append(out, adOutcome{
				adLoadS:    st.AdLoading.Seconds(),
				mainLoadS:  st.MainLoading.Seconds(),
				totalLoadS: st.AdLoading.Seconds() + st.MainLoading.Seconds(),
				adPlayed:   st.AdPlayed,
			})
			// Idle long enough for the LTE tail (~11.6 s) to expire, so
			// every video starts from a cold radio like a fresh session.
			b.K.After(15*time.Second, func() { run(i + 1) })
		})
		b.YouTube.PlayVideo(v)
	}
	run(0)
	b.K.RunUntil(b.K.Now() + time.Duration(len(ids))*15*time.Minute)
	return out
}

// RunAdsImpact regenerates the §7.6 study: ads reduce the main video's own
// loading time (it preloads during the ad) but increase the total loading
// time, roughly doubling it on cellular.
func RunAdsImpact(seed int64, p Params, opts ...analyzer.Option) *Result {
	r := &Result{ID: "sec7.6", Title: "Impact of video ads on loading time (§7.6)"}
	// Catalog videos with digit divisible by 3 carry a pre-roll ad.
	ids := []string{"a0", "c3", "f6", "h9", "k0", "m3", "p6", "s9", "v0", "x3"}

	tbl := &metrics.Table{
		Title:   "§7.6: loading time with and without pre-roll ads (mean s)",
		Headers: []string{"Network", "Ads", "Ad loading", "Main-video loading", "Total spinner time"},
	}
	for pi, mk := range []func() *radio.Profile{radio.ProfileLTE, radio.ProfileWiFi} {
		name := []string{"C1 LTE", "WiFi"}[pi]
		keyNet := []string{"lte", "wifi"}[pi]
		for _, ads := range []bool{false, true} {
			outs := adsRun(seed+int64(pi*2), mk(), ads, ids)
			var adL, mainL, totL []float64
			for _, o := range outs {
				if ads && !o.adPlayed {
					continue
				}
				adL = append(adL, o.adLoadS)
				mainL = append(mainL, o.mainLoadS)
				totL = append(totL, o.totalLoadS)
			}
			am, mm, tm := metrics.Summarize(adL).Mean, metrics.Summarize(mainL).Mean, metrics.Summarize(totL).Mean
			label := "off"
			if ads {
				label = "on"
			}
			tbl.AddRow(name, label, fmtS(am), fmtS(mm), fmtS(tm))
			key := fmt.Sprintf("%s_ads_%s", keyNet, label)
			r.Set(key+"_main_s", mm)
			r.Set(key+"_total_s", tm)
		}
	}
	// Headline ratios on cellular.
	if off := r.Values["lte_ads_off_total_s"]; off > 0 {
		r.Set("lte_total_ratio_with_ads", r.Values["lte_ads_on_total_s"]/off)
	}
	if off := r.Values["lte_ads_off_main_s"]; off > 0 {
		r.Set("lte_main_ratio_with_ads", r.Values["lte_ads_on_main_s"]/off)
	}
	r.Tables = []*metrics.Table{tbl}
	return r
}
