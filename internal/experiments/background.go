package experiments

import (
	"fmt"
	"time"

	"repro/internal/apps/facebook"
	"repro/internal/apps/serversim"
	"repro/internal/core/analyzer"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/radio"
	"repro/internal/testbed"
)

// FriendPostBytes is the content size of a simulated friend post (device A
// of §7.3); the subscriber fetches it on notification.
const FriendPostBytes = 4_000

// bgOutcome is one 16-hour background run's measurements.
type bgOutcome struct {
	ulKB, dlKB float64
	totalJ     float64
	tailJ      float64
	nonTailJ   float64
}

// backgroundRun reproduces the §7.3 testbed: the app sits in the background
// for 16 hours with a push subscription; a friend posts every postEvery
// (zero = never); the app refreshes recommendations every refreshInterval.
func backgroundRun(seed int64, postEvery, refreshInterval time.Duration) bgOutcome {
	cfg := facebook.Config{
		Variant:            serversim.VariantListView,
		RefreshInterval:    refreshInterval,
		SelfUpdateOnNotify: false, // backgrounded: no foreground feed refresh
		Subscribe:          true,
	}
	b := testbed.MustNew(testbed.Options{Seed: seed, Profile: radio.ProfileLTE(), Facebook: cfg})
	b.Facebook.Connect()
	b.K.RunUntil(5 * time.Second)

	if postEvery > 0 {
		// Offset the friend's posting phase from the device's refresh
		// ticks; two independent devices do not fire in lockstep, and
		// aligned events would share radio tail energy.
		b.K.RunUntil(13 * time.Minute)
		n := 0
		b.K.Ticker(postEvery, func() {
			n++
			b.Servers.Facebook.InjectFriendPost(fmt.Sprintf("friend-%d", n), FriendPostBytes)
		})
	}
	const horizon = 16 * time.Hour
	b.K.RunUntil(horizon)

	sess := b.Session(nil)
	flows := analyzer.ExtractFlows(sess.Packets, sess.DeviceAddr)
	ul, dl := flows.HostBytes(serversim.FacebookHost)
	rep := power.Analyze(sess.Profile, sess.Radio, 0, horizon)
	// Report the paper's "network energy": the active radio energy above
	// the idle floor.
	return bgOutcome{
		ulKB: kb(ul), dlKB: kb(dl),
		totalJ: rep.ActiveJ(), tailJ: rep.TailJ, nonTailJ: rep.NonTailJ,
	}
}

var postFreqCases = []struct {
	label string
	every time.Duration
}{
	{"10 min", 10 * time.Minute},
	{"30 min", 30 * time.Minute},
	{"1 hr", time.Hour},
	{"None", 0},
}

// RunBackgroundData regenerates Fig. 10: per-flow mobile data consumption
// by friend post-upload frequency (16 h, default 1-hour refresh interval).
func RunBackgroundData(seed int64, p Params, opts ...analyzer.Option) *Result {
	r := &Result{ID: "fig10", Title: "Background data consumption by post upload frequency (Fig. 10)"}
	tbl := &metrics.Table{
		Title:   "Fig. 10: Facebook background data over 16 h (uplink/downlink)",
		Headers: []string{"Post frequency", "Uplink", "Downlink", "Total"},
	}
	for i, c := range postFreqCases {
		o := backgroundRun(seed+int64(i), c.every, time.Hour)
		tbl.AddRow(c.label, fmtKB(o.ulKB), fmtKB(o.dlKB), fmtKB(o.ulKB+o.dlKB))
		key := fmt.Sprintf("freq_%d", i)
		r.Set(key+"_ul_kb", o.ulKB)
		r.Set(key+"_dl_kb", o.dlKB)
		r.Set(key+"_total_kb", o.ulKB+o.dlKB)
	}
	// The Finding-3 headline: daily floor with zero friend activity.
	none := r.Values["freq_3_total_kb"]
	r.Set("none_daily_kb", none*24/16)
	r.Tables = []*metrics.Table{tbl}
	return r
}

// RunBackgroundEnergy regenerates Fig. 11: estimated network energy by post
// upload frequency, split into tail and non-tail.
func RunBackgroundEnergy(seed int64, p Params, opts ...analyzer.Option) *Result {
	r := &Result{ID: "fig11", Title: "Background energy consumption by post upload frequency (Fig. 11)"}
	tbl := &metrics.Table{
		Title:   "Fig. 11: estimated radio energy over 16 h",
		Headers: []string{"Post frequency", "Non-tail", "Tail", "Total"},
	}
	for i, c := range postFreqCases {
		o := backgroundRun(seed+int64(i), c.every, time.Hour)
		tbl.AddRow(c.label, fmtJ(o.nonTailJ), fmtJ(o.tailJ), fmtJ(o.totalJ))
		key := fmt.Sprintf("freq_%d", i)
		r.Set(key+"_total_j", o.totalJ)
		r.Set(key+"_tail_j", o.tailJ)
		r.Set(key+"_nontail_j", o.nonTailJ)
	}
	none := r.Values["freq_3_total_j"]
	r.Set("none_daily_j", none*24/16)
	r.Tables = []*metrics.Table{tbl}
	return r
}

var refreshCases = []struct {
	label    string
	interval time.Duration
}{
	{"30 min", 30 * time.Minute},
	{"1 hr", time.Hour},
	{"2 hr", 2 * time.Hour},
	{"4 hr", 4 * time.Hour},
}

// RunRefreshData regenerates Fig. 12: data consumption by refresh-interval
// configuration, with a friend posting every 30 minutes.
func RunRefreshData(seed int64, p Params, opts ...analyzer.Option) *Result {
	r := &Result{ID: "fig12", Title: "Data consumption by refresh interval (Fig. 12)"}
	tbl := &metrics.Table{
		Title:   "Fig. 12: Facebook background data over 16 h (friend posts every 30 min)",
		Headers: []string{"Refresh interval", "Uplink", "Downlink", "Total"},
	}
	totals := map[string]float64{}
	for i, c := range refreshCases {
		o := backgroundRun(seed+int64(i), 30*time.Minute, c.interval)
		tbl.AddRow(c.label, fmtKB(o.ulKB), fmtKB(o.dlKB), fmtKB(o.ulKB+o.dlKB))
		totals[c.label] = o.ulKB + o.dlKB
		r.Set(fmt.Sprintf("refresh_%d_total_kb", i), o.ulKB+o.dlKB)
	}
	// Finding 4: 2 h vs the default 1 h saves >=20% data; 2 h ~ 4 h.
	if totals["1 hr"] > 0 {
		r.Set("saving_2h_vs_1h", (totals["1 hr"]-totals["2 hr"])/totals["1 hr"])
	}
	if totals["4 hr"] > 0 {
		r.Set("ratio_2h_vs_4h", totals["2 hr"]/totals["4 hr"])
	}
	r.Tables = []*metrics.Table{tbl}
	return r
}

// RunRefreshEnergy regenerates Fig. 13: energy by refresh interval.
func RunRefreshEnergy(seed int64, p Params, opts ...analyzer.Option) *Result {
	r := &Result{ID: "fig13", Title: "Energy consumption by refresh interval (Fig. 13)"}
	tbl := &metrics.Table{
		Title:   "Fig. 13: estimated radio energy over 16 h (friend posts every 30 min)",
		Headers: []string{"Refresh interval", "Non-tail", "Tail", "Total"},
	}
	totals := map[string]float64{}
	for i, c := range refreshCases {
		o := backgroundRun(seed+int64(i), 30*time.Minute, c.interval)
		tbl.AddRow(c.label, fmtJ(o.nonTailJ), fmtJ(o.tailJ), fmtJ(o.totalJ))
		totals[c.label] = o.totalJ
		r.Set(fmt.Sprintf("refresh_%d_total_j", i), o.totalJ)
	}
	if totals["1 hr"] > 0 {
		r.Set("saving_2h_vs_1h", (totals["1 hr"]-totals["2 hr"])/totals["1 hr"])
	}
	r.Tables = []*metrics.Table{tbl}
	return r
}
