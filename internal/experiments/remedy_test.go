package experiments

import "testing"

// TestRemedyABImproves is the closed-loop acceptance gate: on the default
// throttled-streaming scenario the remediation controller must improve at
// least one fleet QoE metric against the same-seed baseline, every
// intervention must be ledgered with its energy cost, and the counterfactual
// structure (baseline vs remediated key pairs) must be intact.
func TestRemedyABImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("remedy A/B runs two multi-minute fleet simulations")
	}
	r := RunRemedy(7, Params{})

	if r.Values["interventions"] == 0 {
		t.Fatal("controller issued no interventions on the stalling scenario")
	}
	if r.Values["interventions_applied"] == 0 {
		t.Fatal("no intervention actually actuated")
	}
	if r.Values["remedy_energy_j"] <= 0 {
		t.Fatal("applied interventions charged no energy")
	}
	// The headline claim: closing the loop reduces mean rebuffering.
	want(t, r, "rebuffer_improvement", 0.01, 1)
	base := r.Values["baseline/rebuffer_ratio_mean"]
	rem := r.Values["remedied/rebuffer_ratio_mean"]
	if rem >= base {
		t.Fatalf("remediated rebuffer %.4f not below baseline %.4f", rem, base)
	}
	// Both A/B tables rendered: the KPI comparison and the ledger.
	if len(r.Tables) != 2 {
		t.Fatalf("want 2 tables (A/B + ledger), got %d", len(r.Tables))
	}
}
