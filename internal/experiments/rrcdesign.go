package experiments

import (
	"fmt"
	"time"

	"repro/internal/apps/serversim"
	"repro/internal/core/analyzer"
	"repro/internal/core/controller"
	"repro/internal/core/qoe"
	"repro/internal/metrics"
	"repro/internal/radio"
	"repro/internal/testbed"
)

// pageThinkTime separates page loads so the RRC machine demotes between
// them — the regime where promotion overhead hits page-load latency.
const pageThinkTime = 20 * time.Second

// pagesRun loads a URL list with think time and returns the calibrated
// page-load times plus the count of RRC promotions that overlapped QoE
// windows (the §5.4.2 cross-layer diagnosis).
func pagesRun(seed int64, prof *radio.Profile, nPages int) (loads []float64, promotionsInWindows int) {
	b := testbed.MustNew(testbed.Options{Seed: seed, Profile: prof})
	log := &qoe.BehaviorLog{}
	c := controller.New(b.K, b.Browser.Screen, log)
	c.Timeout = 5 * time.Minute
	d := &controller.BrowserDriver{C: c}

	urls := make([]string, nPages)
	for i := range urls {
		urls[i] = fmt.Sprintf("%s/site-%d", serversim.WebHostBase, i)
	}
	var entries []qoe.BehaviorEntry
	d.LoadPages(urls, pageThinkTime, func(es []qoe.BehaviorEntry) { entries = es })
	b.K.RunUntil(time.Duration(nPages) * 2 * time.Minute)

	sess := b.Session(log)
	for _, e := range entries {
		if !e.Observed {
			continue
		}
		loads = append(loads, analyzer.Calibrate(e).Calibrated.Seconds())
		for _, tr := range analyzer.TransitionsIn(sess.Radio, e.Start, e.End) {
			if tr.Promotion {
				promotionsInWindows++
			}
		}
	}
	return loads, promotionsInWindows
}

// RunRRCSimplify regenerates the §7.7 study: replacing the 3-state 3G RRC
// machine (PCH/FACH/DCH) with a simplified direct-promotion design cuts web
// page loading time (the paper measures 22.8%).
func RunRRCSimplify(seed int64, p Params, opts ...analyzer.Option) *Result {
	r := &Result{ID: "sec7.7", Title: "RRC state machine design vs page load time (§7.7)"}
	const nPages = 12

	tbl := &metrics.Table{
		Title:   "§7.7: page load time under different RRC machines",
		Headers: []string{"RRC machine", "Mean load", "p50", "Promotions in QoE windows"},
	}
	type cond struct {
		key   string
		label string
		prof  func() *radio.Profile
	}
	for _, c := range []cond{
		{"default3g", "Default 3G (PCH/FACH/DCH)", radio.Profile3G},
		{"simplified3g", "Simplified 3G (direct PCH->DCH)", radio.ProfileSimplified3G},
		{"lte", "LTE (reference)", radio.ProfileLTE},
	} {
		loads, promos := pagesRun(seed, c.prof(), nPages)
		s := metrics.Summarize(loads)
		cdf := metrics.NewCDF(loads)
		tbl.AddRow(c.label, fmtS(s.Mean), fmtS(cdf.Quantile(0.5)), fmt.Sprintf("%d", promos))
		r.Set(c.key+"_mean_s", s.Mean)
		r.Set(c.key+"_promotions", float64(promos))
	}
	if def := r.Values["default3g_mean_s"]; def > 0 {
		r.Set("reduction", 1-r.Values["simplified3g_mean_s"]/def)
	}
	r.Tables = []*metrics.Table{tbl}
	return r
}
