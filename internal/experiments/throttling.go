package experiments

import (
	"fmt"
	"time"

	"repro/internal/core/analyzer"
	"repro/internal/core/controller"
	"repro/internal/core/qoe"
	"repro/internal/metrics"
	"repro/internal/radio"
	"repro/internal/testbed"
)

// ThrottleRateBps is the §7.5 post-cap rate (the carrier throttles
// over-quota subscribers to ~128 kbps).
const ThrottleRateBps = 128e3

// videoPollInterval is the coarse controller polling cadence used for
// multi-minute playback follows (see EXPERIMENTS.md).
const videoPollInterval = 150 * time.Millisecond

// videoSample selects n pseudo-random video ids from the 260-entry catalog
// ("a0".."z9"), seeded like the paper's random-100 draw.
func videoSample(seed int64, n int) []string {
	// xorshift so the sample is independent of kernel RNG state.
	x := uint64(seed)*2654435761 + 1
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	seen := map[string]bool{}
	var out []string
	for len(out) < n {
		id := fmt.Sprintf("%c%c", byte('a'+next()%26), byte('0'+next()%10))
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// watchOutcome is one video's UI-derived measurements.
type watchOutcome struct {
	initialS  float64
	rebuffer  float64
	completed bool
}

// throttleRun plays the given videos sequentially on one bed configuration
// and collects driver measurements.
func throttleRun(seed int64, prof *radio.Profile, throttleBps float64, ids []string) []watchOutcome {
	b := testbed.MustNew(testbed.Options{Seed: seed, Profile: prof, DisableQxDM: true, DisablePcap: true})
	b.YouTube.Connect()
	b.K.RunUntil(2 * time.Second)
	if throttleBps > 0 {
		b.Throttle(throttleBps)
	}
	log := &qoe.BehaviorLog{}
	c := controller.New(b.K, b.YouTube.Screen, log)
	c.Timeout = 60 * time.Minute
	c.Instrumentation().SetPollInterval(videoPollInterval)
	d := &controller.YouTubeDriver{C: c}

	out := make([]watchOutcome, 0, len(ids))
	var run func(i int)
	run = func(i int) {
		if i >= len(ids) {
			return
		}
		kw, idx := ids[i][:1], int(ids[i][1]-'0')
		err := d.SearchAndPlay(kw, idx, func(st controller.WatchStats) {
			o := watchOutcome{completed: st.InitialLoading.Observed}
			if st.InitialLoading.Observed {
				o.initialS = st.InitialLoading.RawLatency().Seconds()
				o.rebuffer = st.RebufferRatio()
			}
			out = append(out, o)
			b.K.After(3*time.Second, func() { run(i + 1) })
		})
		if err != nil {
			out = append(out, watchOutcome{})
			b.K.After(time.Second, func() { run(i + 1) })
		}
	}
	run(0)
	// Generous horizon: throttled playbacks stretch several-fold.
	b.K.RunUntil(b.K.Now() + time.Duration(len(ids))*30*time.Minute)
	return out
}

func collect(outs []watchOutcome) (init, rebuf []float64) {
	for _, o := range outs {
		if o.completed {
			init = append(init, o.initialS)
			rebuf = append(rebuf, o.rebuffer)
		}
	}
	return init, rebuf
}

// RunThrottleCDF regenerates Fig. 17: initial-loading-time and
// rebuffering-ratio distributions, throttled vs unthrottled, 3G vs LTE.
func RunThrottleCDF(seed int64, p Params, opts ...analyzer.Option) *Result {
	r := &Result{ID: "fig17", Title: "Throttling impact on video QoE (Fig. 17)"}
	const nVideos = 30 // scaled from the paper's 100 (see EXPERIMENTS.md)
	ids := videoSample(seed, nVideos)

	conds := []struct {
		key      string
		label    string
		prof     func() *radio.Profile
		throttle float64
	}{
		{"3g_free", "3G unthrottled", radio.Profile3G, 0},
		{"3g_capped", "3G throttled", radio.Profile3G, p.throttle(ThrottleRateBps)},
		{"lte_free", "LTE unthrottled", radio.ProfileLTE, 0},
		{"lte_capped", "LTE throttled", radio.ProfileLTE, p.throttle(ThrottleRateBps)},
	}
	initTbl := &metrics.Table{
		Title:   "Fig. 17 (bottom): initial loading time (s)",
		Headers: []string{"Condition", "N", "p25", "p50", "p75", "Mean", "Stddev"},
	}
	rebufTbl := &metrics.Table{
		Title:   "Fig. 17 (top): rebuffering ratio",
		Headers: []string{"Condition", "N", "p25", "p50", "p75", "Mean", "Stddev"},
	}
	initSeries := map[string][]float64{}
	rebufSeries := map[string][]float64{}
	for i, c := range conds {
		outs := throttleRun(seed+int64(i), c.prof(), c.throttle, ids)
		init, rebuf := collect(outs)
		initSeries[c.label] = init
		rebufSeries[c.label] = rebuf
		is, rs := metrics.Summarize(init), metrics.Summarize(rebuf)
		icdf, rcdf := metrics.NewCDF(init), metrics.NewCDF(rebuf)
		initTbl.AddRow(c.label, fmt.Sprintf("%d", len(init)),
			fmtS(icdf.Quantile(0.25)), fmtS(icdf.Quantile(0.5)), fmtS(icdf.Quantile(0.75)),
			fmtS(is.Mean), fmt.Sprintf("%.2f", is.Stddev))
		rebufTbl.AddRow(c.label, fmt.Sprintf("%d", len(rebuf)),
			fmt.Sprintf("%.3f", rcdf.Quantile(0.25)), fmt.Sprintf("%.3f", rcdf.Quantile(0.5)),
			fmt.Sprintf("%.3f", rcdf.Quantile(0.75)),
			fmt.Sprintf("%.3f", rs.Mean), fmt.Sprintf("%.3f", rs.Stddev))
		r.Set(c.key+"_init_mean_s", is.Mean)
		r.Set(c.key+"_init_stddev_s", is.Stddev)
		r.Set(c.key+"_rebuf_mean", rs.Mean)
		r.Set(c.key+"_rebuf_stddev", rs.Stddev)
		r.Set(c.key+"_n", float64(len(init)))
	}
	if free := r.Values["3g_free_init_mean_s"]; free > 0 {
		r.Set("init_multiplier_3g", r.Values["3g_capped_init_mean_s"]/free)
	}
	if free := r.Values["lte_free_init_mean_s"]; free > 0 {
		r.Set("init_multiplier_lte", r.Values["lte_capped_init_mean_s"]/free)
	}
	r.Tables = []*metrics.Table{rebufTbl, initTbl}
	r.Plots = []string{
		metrics.PlotCDFs("Fig. 17 CDF: rebuffering ratio", "ratio", rebufSeries, 60, 12),
		metrics.PlotCDFs("Fig. 17 CDF: initial loading time", "seconds", initSeries, 60, 12),
	}
	return r
}

// flowView is a compact per-flow summary for the Fig. 18 comparison.
type flowView struct {
	dlBytes         int
	retransmissions int
	throughput      []float64 // downlink bps per 10 s bin
	variance        float64
}

// analyzerFlows extracts flows and computes throughput series over the
// first 300 s of each flow: 10 s bins for display, 2 s bins for the
// variance statistic (policing burstiness averages out in coarse bins).
func analyzerFlows(sess *qoe.Session) []*flowView {
	rep := analyzer.ExtractFlows(sess.Packets, sess.DeviceAddr)
	var out []*flowView
	for _, f := range rep.Flows {
		fv := &flowView{
			dlBytes:         f.DLBytes,
			retransmissions: f.Retransmissions,
			throughput:      f.ThroughputSeries(10*time.Second, 300*time.Second),
		}
		fine := f.ThroughputSeries(2*time.Second, 250*time.Second)
		s := metrics.Summarize(fine)
		fv.variance = s.Stddev * s.Stddev
		out = append(out, fv)
	}
	return out
}

// RunShapeVsPolice regenerates Fig. 18: downlink throughput over time under
// 3G traffic shaping vs LTE traffic policing, plus the TCP retransmission
// counts that explain the difference (Finding 7).
func RunShapeVsPolice(seed int64, p Params, opts ...analyzer.Option) *Result {
	r := &Result{ID: "fig18", Title: "3G traffic shaping vs LTE traffic policing (Fig. 18)"}
	const horizon = 300 * time.Second

	run := func(prof *radio.Profile) ([]float64, int, float64) {
		b := testbed.MustNew(testbed.Options{Seed: seed, Profile: prof, DisableQxDM: true})
		b.YouTube.Connect()
		b.K.RunUntil(2 * time.Second)
		b.Throttle(p.throttle(ThrottleRateBps))
		log := &qoe.BehaviorLog{}
		c := controller.New(b.K, b.YouTube.Screen, log)
		c.Timeout = 30 * time.Minute
		c.Instrumentation().SetPollInterval(videoPollInterval)
		d := &controller.YouTubeDriver{C: c}
		// "y2" hashes to one of the longest catalog videos: its throttled
		// download spans the whole 300 s trace window.
		d.SearchAndPlay("y", 2, nil)
		b.K.RunUntil(b.K.Now() + horizon)

		// Transport-layer view: the biggest flow is the media stream.
		sess := b.Session(log)
		flows := analyzerFlows(sess)
		var media *flowView
		for _, f := range flows {
			if media == nil || f.dlBytes > media.dlBytes {
				media = f
			}
		}
		if media == nil {
			return nil, 0, 0
		}
		return media.throughput, media.retransmissions, media.variance
	}

	g3Series, g3Retx, g3Var := run(radio.Profile3G())
	lteSeries, lteRetx, lteVar := run(radio.ProfileLTE())

	tbl := &metrics.Table{
		Title:   "Fig. 18: downlink throughput, 10 s bins (kbps)",
		Headers: []string{"Bin", "3G shaping", "LTE policing"},
	}
	for i := 0; i < len(g3Series) && i < len(lteSeries); i++ {
		tbl.AddRow(fmt.Sprintf("%3d-%3ds", i*10, (i+1)*10),
			fmt.Sprintf("%.0f", g3Series[i]/1000), fmt.Sprintf("%.0f", lteSeries[i]/1000))
	}
	sum := &metrics.Table{
		Title:   "Fig. 18 summary",
		Headers: []string{"Mechanism", "TCP retransmissions", "Throughput variance (kbps^2)"},
	}
	sum.AddRow("3G traffic shaping", fmt.Sprintf("%d", g3Retx), fmt.Sprintf("%.0f", g3Var/1e6))
	sum.AddRow("LTE traffic policing", fmt.Sprintf("%d", lteRetx), fmt.Sprintf("%.0f", lteVar/1e6))
	r.Set("3g_retransmissions", float64(g3Retx))
	r.Set("lte_retransmissions", float64(lteRetx))
	r.Set("3g_throughput_var", g3Var)
	r.Set("lte_throughput_var", lteVar)
	r.Tables = []*metrics.Table{tbl, sum}
	return r
}

// RunRebufferVsRate regenerates Fig. 19: rebuffering ratio vs throttled
// bandwidth (100-500 kbps), 3G shaping vs LTE policing.
func RunRebufferVsRate(seed int64, p Params, opts ...analyzer.Option) *Result {
	return rateSweep(seed, p, "fig19", "Rebuffering ratio vs throttled bandwidth (Fig. 19)", true)
}

// RunInitLoadVsRate regenerates Fig. 20: initial loading time vs throttled
// bandwidth.
func RunInitLoadVsRate(seed int64, p Params, opts ...analyzer.Option) *Result {
	return rateSweep(seed, p, "fig20", "Initial loading time vs throttled bandwidth (Fig. 20)", false)
}

func rateSweep(seed int64, p Params, id, title string, rebuf bool) *Result {
	r := &Result{ID: id, Title: title}
	const nVideos = 8
	ids := videoSample(seed, nVideos)
	rates := []float64{100e3, 200e3, 300e3, 400e3, 500e3}
	if p.ThrottleBps > 0 {
		rates = []float64{p.ThrottleBps}
	}

	hdr := []string{"Throttle rate", "3G shaping", "LTE policing"}
	tbl := &metrics.Table{Title: title, Headers: hdr}
	for _, rate := range rates {
		row := []string{fmt.Sprintf("%.0f kbps", rate/1000)}
		for pi, mk := range []func() *radio.Profile{radio.Profile3G, radio.ProfileLTE} {
			outs := throttleRun(seed+int64(rate/1000)+int64(pi*7), mk(), rate, ids)
			init, rb := collect(outs)
			var v float64
			if rebuf {
				v = metrics.Summarize(rb).Mean
				row = append(row, fmt.Sprintf("%.3f", v))
			} else {
				v = metrics.Summarize(init).Mean
				row = append(row, fmtS(v))
			}
			key := fmt.Sprintf("%s_%.0fk", []string{"3g", "lte"}[pi], rate/1000)
			r.Set(key, v)
		}
		tbl.AddRow(row...)
	}
	r.Tables = []*metrics.Table{tbl}
	return r
}
