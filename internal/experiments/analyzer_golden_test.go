package experiments

import (
	"os"
	"reflect"
	"testing"

	"repro/internal/core/analyzer"
)

// TestAnalyzerEngineGolden proves the PR4 analyzer rebuild changed nothing
// observable: every experiment renders byte-identical output (and produces
// identical metric values) whether the serial seed engine or the parallel
// indexed engine runs underneath. A fast cross-section of the registry runs
// by default; set ANALYZER_GOLDEN_FULL=1 (wired to `make analyzer-golden`)
// to sweep all of it.
func TestAnalyzerEngineGolden(t *testing.T) {
	ids := []string{"fig8", "fig12", "sec7.7"}
	if os.Getenv("ANALYZER_GOLDEN_FULL") != "" {
		ids = nil
		for _, e := range Registry() {
			ids = append(ids, e.ID)
		}
	} else if testing.Short() {
		ids = []string{"fig12"}
	}
	for _, id := range ids {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("unknown experiment %q", id)
		}
		t.Run(id, func(t *testing.T) {
			want := e.Run(77, Params{}, analyzer.WithEngine(analyzer.EngineSerial))
			got := e.Run(77, Params{}, analyzer.WithEngine(analyzer.EngineParallel))
			if got.Render() != want.Render() {
				t.Errorf("%s: render diverges between engines:\n--- serial ---\n%s\n--- parallel ---\n%s",
					id, want.Render(), got.Render())
			}
			if !reflect.DeepEqual(got.Values, want.Values) {
				t.Errorf("%s: values diverge between engines", id)
			}
		})
	}
}
