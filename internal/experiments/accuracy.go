package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/apps/facebook"
	"repro/internal/apps/serversim"
	"repro/internal/core/analyzer"
	"repro/internal/core/controller"
	"repro/internal/core/qoe"
	"repro/internal/metrics"
	"repro/internal/radio"
	"repro/internal/simtime"
	"repro/internal/testbed"
	"repro/internal/uisim"
)

// barCycles records, from screen draws, every show/hide transition of a
// progress-bar-like view — the simulation's stand-in for the paper's 60fps
// screen recording ground truth.
type barCycles struct {
	Shows, Hides []simtime.Time
	wasShown     bool
}

func watchBar(screen *uisim.Screen, sig uisim.Signature) *barCycles {
	bc := &barCycles{}
	screen.OnDraw(func(at simtime.Time) {
		v := screen.Root().Find(sig)
		shown := v != nil && v.Shown()
		if shown && !bc.wasShown {
			bc.Shows = append(bc.Shows, at)
		}
		if !shown && bc.wasShown {
			bc.Hides = append(bc.Hides, at)
		}
		bc.wasShown = shown
	})
	return bc
}

// errSample is one |measured - truth| comparison.
type errSample struct {
	measured, truth time.Duration
}

func (e errSample) absErr() time.Duration {
	d := e.measured - e.truth
	if d < 0 {
		d = -d
	}
	return d
}

func summarizeErr(samples []errSample) (avgErr time.Duration, maxRatio float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	var sum time.Duration
	minTruth := time.Duration(math.MaxInt64)
	for _, s := range samples {
		sum += s.absErr()
		if s.truth < minTruth && s.truth > 0 {
			minTruth = s.truth
		}
	}
	avgErr = sum / time.Duration(len(samples))
	// The paper upper-bounds the error ratio with the shortest t_screen.
	if minTruth > 0 && minTruth != time.Duration(math.MaxInt64) {
		maxRatio = avgErr.Seconds() / minTruth.Seconds()
	}
	return avgErr, maxRatio
}

// accuracyPostUpdates measures Facebook post-update latency against screen
// ground truth, and returns the CPU overhead observed during the run.
func accuracyPostUpdates(seed int64, reps int) (samples []errSample, cpuOverhead float64) {
	b := testbed.MustNew(testbed.Options{Seed: seed, Profile: radio.ProfileLTE(), DisableQxDM: true})
	b.Facebook.Connect()
	b.K.RunUntil(2 * time.Second)
	log := &qoe.BehaviorLog{}
	c := controller.New(b.K, b.Facebook.Screen, log)
	d := controller.NewFacebookDriver(c, false)

	// Per-rep records, paired after the run: the done callback can fire
	// before the draw commits (the tree updates ahead of the screen), so
	// pairing must happen once both timestamps exist.
	entries := make([]qoe.BehaviorEntry, reps)
	screenAts := make([]simtime.Time, reps)
	for i := range screenAts {
		screenAts[i] = -1
	}
	var run func(i int)
	run = func(i int) {
		if i >= reps {
			return
		}
		stamp, err := d.UploadPost(facebook.PostStatus, i, func(e qoe.BehaviorEntry) {
			entries[i] = e
			b.K.After(2*time.Second, func() { run(i + 1) })
		})
		if err != nil {
			return
		}
		// Screen ground truth: the first draw showing this stamp.
		b.Facebook.Screen.WatchScreen(func(r *uisim.View) bool {
			for _, v := range r.FindAll(uisim.Signature{ID: facebook.IDFeedItem}) {
				if v.Shown() && containsStr(v.Text(), stamp) {
					return true
				}
			}
			return false
		}, func(at simtime.Time) { screenAts[i] = at })
	}
	run(0)
	b.K.RunUntil(b.K.Now() + time.Duration(reps+2)*10*time.Second)

	for i := 0; i < reps; i++ {
		if entries[i].Observed && screenAts[i] >= 0 {
			lat := analyzer.Calibrate(entries[i])
			truth := time.Duration(screenAts[i] - entries[i].Start)
			samples = append(samples, errSample{lat.Calibrated, truth})
		}
	}

	// Table 3 CPU overhead: instrumentation parse CPU relative to the app's
	// own CPU during the most compute-intensive operation.
	app := b.Facebook.Screen.AppCPU()
	parse := c.Instrumentation().ParseCPU()
	if app > 0 {
		cpuOverhead = parse.Seconds() / app.Seconds()
	}
	return samples, cpuOverhead
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// accuracyPullToUpdate compares app-triggered bar-cycle measurements with
// screen truth.
func accuracyPullToUpdate(seed int64, reps int) []errSample {
	b := testbed.MustNew(testbed.Options{Seed: seed, Profile: radio.ProfileLTE(), DisableQxDM: true})
	b.Facebook.Connect()
	b.K.RunUntil(2 * time.Second)
	log := &qoe.BehaviorLog{}
	c := controller.New(b.K, b.Facebook.Screen, log)
	d := controller.NewFacebookDriver(c, false)
	bars := watchBar(b.Facebook.Screen, uisim.Signature{ID: facebook.IDFeedProgress})

	var entries []qoe.BehaviorEntry
	var run func(i int)
	run = func(i int) {
		if i >= reps {
			return
		}
		err := d.PullToUpdate(func(e qoe.BehaviorEntry) {
			entries = append(entries, e)
			b.K.After(2*time.Second, func() { run(i + 1) })
		})
		if err != nil {
			return
		}
	}
	run(0)
	b.K.RunUntil(b.K.Now() + time.Duration(reps+2)*15*time.Second)
	return pairCycles(entries, bars)
}

// pairCycles aligns the k-th measured bar cycle with the k-th screen cycle.
func pairCycles(entries []qoe.BehaviorEntry, bars *barCycles) []errSample {
	var out []errSample
	for i, e := range entries {
		if !e.Observed || i >= len(bars.Shows) || i >= len(bars.Hides) {
			break
		}
		truth := time.Duration(bars.Hides[i] - bars.Shows[i])
		out = append(out, errSample{analyzer.Calibrate(e).Calibrated, truth})
	}
	return out
}

// accuracyYouTube measures initial loading (and rebuffers under throttle)
// against screen truth.
func accuracyYouTube(seed int64, videos []string, throttle bool) (initial, rebuffer []errSample) {
	b := testbed.MustNew(testbed.Options{Seed: seed, Profile: radio.ProfileLTE(), DisableQxDM: true})
	b.YouTube.Connect()
	b.K.RunUntil(time.Second)
	if throttle {
		b.Throttle(220e3)
	}
	log := &qoe.BehaviorLog{}
	c := controller.New(b.K, b.YouTube.Screen, log)
	c.Timeout = 60 * time.Minute
	d := &controller.YouTubeDriver{C: c}
	bars := watchBar(b.YouTube.Screen, uisim.Signature{ID: "com.google.android.youtube:id/player_progress"})

	var run func(i int)
	run = func(i int) {
		if i >= len(videos) {
			return
		}
		kw := videos[i][:1]
		idx := int(videos[i][1] - '0')
		prevShows := len(bars.Shows)
		err := d.SearchAndPlay(kw, idx, func(st controller.WatchStats) {
			if st.InitialLoading.Observed && len(bars.Shows) > prevShows && len(bars.Hides) > prevShows {
				truth := time.Duration(bars.Hides[prevShows] - st.InitialLoading.Start)
				initial = append(initial, errSample{analyzer.Calibrate(st.InitialLoading).Calibrated, truth})
			}
			// Rebuffer cycles follow the initial-loading cycle.
			for j, r := range st.Rebuffers {
				k := prevShows + 1 + j
				if k < len(bars.Shows) && k < len(bars.Hides) {
					truth := time.Duration(bars.Hides[k] - bars.Shows[k])
					rebuffer = append(rebuffer, errSample{analyzer.Calibrate(r).Calibrated, truth})
				}
			}
			b.K.After(3*time.Second, func() { run(i + 1) })
		})
		if err != nil {
			return
		}
	}
	run(0)
	b.K.RunUntil(b.K.Now() + 3*time.Hour)
	return initial, rebuffer
}

// accuracyWeb measures page-load latency against screen truth.
func accuracyWeb(seed int64, pages int) []errSample {
	b := testbed.MustNew(testbed.Options{Seed: seed, Profile: radio.ProfileLTE(), DisableQxDM: true})
	log := &qoe.BehaviorLog{}
	c := controller.New(b.K, b.Browser.Screen, log)
	d := &controller.BrowserDriver{C: c}
	bars := watchBar(b.Browser.Screen, uisim.Signature{ID: "com.android.browser:id/load_progress"})

	urls := make([]string, pages)
	for i := range urls {
		urls[i] = fmt.Sprintf("%s/page-%d", serversim.WebHostBase, i)
	}
	var entries []qoe.BehaviorEntry
	d.LoadPages(urls, 3*time.Second, func(es []qoe.BehaviorEntry) { entries = es })
	b.K.RunUntil(time.Duration(pages+2) * time.Minute)

	// Page loads are user-triggered: truth is ENTER press -> bar hidden.
	var out []errSample
	for i, e := range entries {
		if !e.Observed || i >= len(bars.Hides) {
			break
		}
		truth := time.Duration(bars.Hides[i] - e.Start)
		out = append(out, errSample{analyzer.Calibrate(e).Calibrated, truth})
	}
	return out
}

// accuracyMapping measures the IP-to-RLC mapping ratios on 3G (Table 3's
// 99.52% / 88.83%). Each direction is evaluated on bulk traffic of that
// direction — photo uploads for the uplink, web page downloads for the
// downlink — since pure-ACK packets (one short PDU each) rarely overlap a
// capture-lost PDU and would dilute the ratio.
func accuracyMapping(seed int64, opts ...analyzer.Option) (ul, dl float64) {
	// Uplink: 3 photo posts (~380 KB each).
	b := testbed.MustNew(testbed.Options{Seed: seed, Profile: radio.Profile3G()})
	b.Facebook.Connect()
	b.K.RunUntil(3 * time.Second)
	log := &qoe.BehaviorLog{}
	c := controller.New(b.K, b.Facebook.Screen, log)
	d := controller.NewFacebookDriver(c, false)
	var run func(i int)
	run = func(i int) {
		if i >= 3 {
			return
		}
		d.UploadPost(facebook.PostPhotos, i, func(qoe.BehaviorEntry) {
			b.K.After(time.Second, func() { run(i + 1) })
		})
	}
	run(0)
	b.K.RunUntil(b.K.Now() + 10*time.Minute)
	// Kick off the uplink analysis asynchronously: it overlaps the
	// downlink bed's simulation below (the sim/analyze pipeline).
	ulPending := b.AnalyzeAsync(log, opts...)

	// Downlink: 8 page loads (~0.2 MB of download data each).
	b2 := testbed.MustNew(testbed.Options{Seed: seed + 1, Profile: radio.Profile3G()})
	log2 := &qoe.BehaviorLog{}
	c2 := controller.New(b2.K, b2.Browser.Screen, log2)
	d2 := &controller.BrowserDriver{C: c2}
	urls := make([]string, 8)
	for i := range urls {
		urls[i] = fmt.Sprintf("%s/map-%d", serversim.WebHostBase, i)
	}
	d2.LoadPages(urls, 2*time.Second, nil)
	b2.K.RunUntil(10 * time.Minute)
	dl = analyzer.NewCrossLayer(b2.Session(log2), opts...).DLMap.Ratio()
	ul = ulPending.Wait().ULMap.Ratio()
	return ul, dl
}

// RunAccuracy regenerates Table 3 and Fig. 6.
func RunAccuracy(seed int64, p Params, opts ...analyzer.Option) *Result {
	r := &Result{ID: "table3", Title: "Tool accuracy and overhead (Table 3, Fig. 6)"}

	postErr, cpu := accuracyPostUpdates(seed, 15)
	pullErr := accuracyPullToUpdate(seed+1, 10)
	ytInit, _ := accuracyYouTube(seed+2, []string{"a1", "b2", "c4"}, false)
	_, ytRebuf := accuracyYouTube(seed+3, []string{"a1"}, true)
	webErr := accuracyWeb(seed+4, 10)
	ulMap, dlMap := accuracyMapping(seed+5, opts...)

	fig6 := &metrics.Table{
		Title:   "Fig. 6: error ratio of user-perceived latency measurements",
		Headers: []string{"Metric", "Samples", "Avg |error|", "Error ratio (upper bound)"},
	}
	addRow := func(name string, samples []errSample, key string) {
		avg, ratio := summarizeErr(samples)
		fig6.AddRow(name, fmt.Sprintf("%d", len(samples)),
			fmt.Sprintf("%.1f ms", avg.Seconds()*1000), fmtPct(ratio))
		r.Set(key+"_err_ms", avg.Seconds()*1000)
		r.Set(key+"_ratio", ratio)
		r.Set(key+"_n", float64(len(samples)))
	}
	addRow("Facebook post updates", postErr, "post")
	addRow("Facebook pull-to-update", pullErr, "pull")
	addRow("YouTube initial loading", ytInit, "yt_init")
	addRow("YouTube rebuffering", ytRebuf, "yt_rebuf")
	addRow("Web browsing page loading", webErr, "web")

	t3 := &metrics.Table{Title: "Table 3: tool accuracy and overhead summary", Headers: []string{"Item", "Value"}}
	allErr := append(append(append(append(append([]errSample{}, postErr...), pullErr...), ytInit...), ytRebuf...), webErr...)
	avgAll, _ := summarizeErr(allErr)
	t3.AddRow("User-perceived latency measurement error", fmt.Sprintf("%.1f ms (paper: <=40 ms)", avgAll.Seconds()*1000))
	t3.AddRow("Transport/network to RLC mapping ratio (UL)", fmtPct(ulMap)+" (paper: 99.52%)")
	t3.AddRow("Transport/network to RLC mapping ratio (DL)", fmtPct(dlMap)+" (paper: 88.83%)")
	t3.AddRow("CPU overhead", fmtPct(cpu)+" (paper: 6.18%)")
	r.Set("latency_err_ms", avgAll.Seconds()*1000)
	r.Set("mapping_ul", ulMap)
	r.Set("mapping_dl", dlMap)
	r.Set("cpu_overhead", cpu)

	r.Tables = []*metrics.Table{t3, fig6}
	return r
}
