package experiments

import (
	"fmt"
	"time"

	"repro/internal/core/analyzer"

	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/radio"
)

// Remedy A/B defaults: a single LTE cell where every UE streams video
// through a carrier throttle tight enough that the native bitrate cannot
// sustain playback. The baseline run rebuffers; the remediated run lets the
// closed-loop controller diagnose the stall and step the ABR ladder down
// (or switch the UE to an edge server when the radio is clean).
const (
	remedyUEs         = 6
	remedyThrottleBps = 280e3
	remedyHorizon     = 10 * time.Minute
)

// RunRemedy is the counterfactual A/B harness for the closed-loop
// remediation controller: the identical scenario (same seed, same UEs, same
// impairment) runs twice — once controller-free, once with the fleet's
// remediation control plane in the loop — and the per-UE QoE deltas are
// attributed to the interventions that produced them. Every intervention is
// listed with its diagnosis, energy cost, and the QoE movement of the UE it
// acted on, so the experiment answers both "did closing the loop help?" and
// "what did each action buy?".
func RunRemedy(seed int64, p Params, opts ...analyzer.Option) *Result {
	res := &Result{ID: "remedy", Title: "Closed-loop QoE remediation (counterfactual A/B)"}

	run := func(withCtl bool) (*fleet.Report, error) {
		ues := fleet.UniformUEs(p.ues(remedyUEs))
		for i := range ues {
			ues[i].ThrottleBps = p.throttle(remedyThrottleBps)
		}
		scen := fleet.Scenario{
			Seed:     seed,
			Cell:     fleet.CellSpec{Profile: radio.ProfileLTE(), Policy: radio.SchedPropFair},
			UEs:      ues,
			Workload: fleet.YouTubeWorkload{},
		}
		if withCtl {
			if p.Remedy != nil {
				spec := *p.Remedy
				scen.Remedy = &spec
			} else {
				scen.Remedy = &fleet.RemedySpec{}
			}
		}
		return fleet.Run(scen, fleet.WithHorizon(p.horizon(remedyHorizon)), fleet.WithAnalyzer(opts...))
	}

	base, err := run(false)
	if err != nil {
		res.Set("error/baseline", 1)
		return res
	}
	rem, err := run(true)
	if err != nil {
		res.Set("error/remedied", 1)
		return res
	}

	// Fleet-level A/B: the same KPI aggregates side by side with deltas.
	ab := &metrics.Table{
		Title:   "Same-seed counterfactual (baseline vs remediated)",
		Headers: []string{"KPI", "Baseline", "Remediated", "Delta"},
	}
	for _, kpi := range []struct{ name, col string }{
		{"rebuffer_ratio", "mean"},
		{"rebuffer_ratio", "p95"},
		{"user_latency_s", "mean"},
		{"rrc_energy_j", "mean"},
	} {
		b, _ := base.Value(kpi.name, kpi.col)
		r, _ := rem.Value(kpi.name, kpi.col)
		key := kpi.name + "_" + kpi.col
		ab.AddRow(key, fmt.Sprintf("%.4f", b), fmt.Sprintf("%.4f", r), fmt.Sprintf("%+.4f", r-b))
		res.Set("baseline/"+key, b)
		res.Set("remedied/"+key, r)
	}

	// Per-intervention ledger: each control-plane action with its energy
	// cost and the QoE movement of the UE it acted on (remediated minus
	// baseline, same seed — negative rebuffer/latency deltas are wins).
	ledger := &metrics.Table{
		Title:   "Per-intervention QoE delta and energy cost",
		Headers: []string{"UE", "At", "Action", "Diagnosis", "Applied", "Energy", "dRebuf", "dLatency"},
	}
	interventions, applied := 0, 0
	var energyJ float64
	for i, u := range rem.UEs {
		if len(u.Interventions) == 0 {
			continue
		}
		dReb := u.RebufferRatio - base.UEs[i].RebufferRatio
		dLat := (u.MeanLatency - base.UEs[i].MeanLatency).Seconds()
		for _, iv := range u.Interventions {
			interventions++
			if iv.Applied {
				applied++
			}
			energyJ += iv.EnergyJ
			ledger.AddRow(u.Name,
				fmt.Sprintf("%.1fs", time.Duration(iv.AppliedAt).Seconds()),
				iv.Kind.String(), iv.Layer.String(), fmt.Sprintf("%v", iv.Applied),
				fmt.Sprintf("%.2fJ", iv.EnergyJ),
				fmt.Sprintf("%+.4f", dReb), fmt.Sprintf("%+.3fs", dLat))
		}
	}
	res.Set("interventions", float64(interventions))
	res.Set("interventions_applied", float64(applied))
	res.Set("remedy_energy_j", energyJ)

	bReb, _ := base.Value("rebuffer_ratio", "mean")
	rReb, _ := rem.Value("rebuffer_ratio", "mean")
	res.Set("rebuffer_improvement", bReb-rReb)

	res.Tables = []*metrics.Table{ab, ledger}
	return res
}
