package experiments

import (
	"fmt"
	"time"

	"repro/internal/core/analyzer"

	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/radio"
)

// RunHandoverStorm quantifies what mobility costs QoE: the same 12-UE
// browse workload runs twice on a 4-cell LTE grid — once with every UE
// parked on its home cell, once with every UE driving at 30 m/s, forcing
// A3 handovers whose interruption windows freeze the data plane. The table
// compares pageload percentiles and handover counts; the sharded multi-cell
// fleet (one kernel per cell, lockstep-synchronized) makes the storm run
// deterministic at any worker count.
func RunHandoverStorm(seed int64, p Params, opts ...analyzer.Option) *Result {
	res := &Result{ID: "handover", Title: "QoE under a handover storm (multi-cell mobility)"}
	tbl := &metrics.Table{Headers: []string{
		"Mobility", "Pageload p50", "Pageload p95", "Latency p95", "HO+resel (mean)",
	}}

	for _, mode := range []struct {
		name  string
		speed float64
	}{{"static", 0}, {"storm", p.speed(30)}} {
		scen := fleet.Scenario{
			Seed:     seed,
			Cell:     fleet.CellSpec{Profile: radio.ProfileLTE(), Policy: radio.SchedPropFair},
			Topology: &fleet.TopologySpec{Cells: p.cells(4), SpacingM: 300},
			UEs:      fleet.UniformUEs(p.ues(12)),
			Workload: fleet.BrowseWorkload{Pages: 3, ThinkTime: 4 * time.Second},
			Remedy:   p.Remedy,
		}
		if mode.speed > 0 {
			scen.Mobility = &fleet.MobilitySpec{SpeedMps: mode.speed, TTT: 240 * time.Millisecond}
		}
		rep, err := fleet.Run(scen, fleet.WithHorizon(p.horizon(3*time.Minute)), fleet.WithAnalyzer(opts...))
		if err != nil {
			res.Set(fmt.Sprintf("error/%s", mode.name), 1)
			continue
		}
		p50, _ := rep.Value("pageload_s", "p50")
		p95, _ := rep.Value("pageload_s", "p95")
		lat95, _ := rep.Value("user_latency_s", "p95")
		ho, _ := rep.Value("handovers", "mean")
		hoMean := fmt.Sprintf("%.1f", ho)
		if mode.speed == 0 {
			hoMean = "0.0"
		}
		tbl.AddRow(mode.name, fmtS(p50), fmtS(p95), fmtS(lat95), hoMean)
		key := func(m string) string { return fmt.Sprintf("%s/%s", m, mode.name) }
		res.Set(key("pageload_p50_s"), p50)
		res.Set(key("pageload_p95_s"), p95)
		res.Set(key("user_latency_p95_s"), lat95)
		if mode.speed > 0 {
			total := 0
			for _, u := range rep.UEs {
				total += u.Handovers + u.Reselections
			}
			res.Set("handovers_total", float64(total))
			res.Set("handovers_mean", ho)
		}
	}
	res.Tables = append(res.Tables, tbl)
	return res
}
