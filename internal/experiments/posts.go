package experiments

import (
	"fmt"
	"time"

	"repro/internal/apps/facebook"
	"repro/internal/core/analyzer"
	"repro/internal/core/controller"
	"repro/internal/core/qoe"
	"repro/internal/metrics"
	"repro/internal/radio"
	"repro/internal/testbed"
)

// postRun drives reps post uploads of one kind on one network, posting
// every 2 seconds like the §7.2 setup, and returns the session plus the
// logged entries.
func postRun(seed int64, prof *radio.Profile, kind string, reps int, opts ...analyzer.Option) (*analyzer.CrossLayer, []qoe.BehaviorEntry) {
	b := testbed.MustNew(testbed.Options{Seed: seed, Profile: prof})
	b.Facebook.Connect()
	b.K.RunUntil(3 * time.Second)
	log := &qoe.BehaviorLog{}
	c := controller.New(b.K, b.Facebook.Screen, log)
	d := controller.NewFacebookDriver(c, false)

	var run func(i int)
	run = func(i int) {
		if i >= reps {
			return
		}
		d.UploadPost(kind, i, func(qoe.BehaviorEntry) {
			b.K.After(2*time.Second, func() { run(i + 1) })
		})
	}
	run(0)
	b.K.RunUntil(b.K.Now() + time.Duration(reps)*time.Minute)
	cl := analyzer.NewCrossLayer(b.Session(log), opts...)
	return cl, log.ByAction("upload_post_" + kind)
}

// splitStats averages device/network splits over entries.
type splitStats struct {
	total, device, network metrics.Summary
	netShare               float64
}

func splitOver(cl *analyzer.CrossLayer, entries []qoe.BehaviorEntry) splitStats {
	var tot, dev, net []float64
	for _, e := range entries {
		if !e.Observed {
			continue
		}
		s := cl.SplitDeviceNetwork(analyzer.Calibrate(e))
		tot = append(tot, s.UserPerceived.Seconds())
		dev = append(dev, s.Device.Seconds())
		net = append(net, s.Network.Seconds())
	}
	st := splitStats{
		total:   metrics.Summarize(tot),
		device:  metrics.Summarize(dev),
		network: metrics.Summarize(net),
	}
	if st.total.Mean > 0 {
		st.netShare = st.network.Mean / st.total.Mean
	}
	return st
}

// RunPostBreakdown regenerates Fig. 7: device vs network delay for posting
// 2 photos, a check-in, and a status, on C1 3G and C1 LTE.
func RunPostBreakdown(seed int64, p Params, opts ...analyzer.Option) *Result {
	r := &Result{ID: "fig7", Title: "Device and network delay breakdown for post uploads (Fig. 7)"}
	const reps = 20

	tbl := &metrics.Table{
		Title:   "Fig. 7: post upload latency breakdown (mean over 20 reps)",
		Headers: []string{"Network", "Action", "Total", "Device", "Network", "Net share", "Stddev"},
	}
	kinds := []string{facebook.PostPhotos, facebook.PostCheckin, facebook.PostStatus}
	profs := []func() *radio.Profile{radio.Profile3G, radio.ProfileLTE}
	names := []string{"C1 3G", "C1 LTE"}
	for pi, mk := range profs {
		for ki, kind := range kinds {
			cl, entries := postRun(seed+int64(pi*10+ki), mk(), kind, reps, opts...)
			st := splitOver(cl, entries)
			tbl.AddRow(names[pi], kind, fmtS(st.total.Mean), fmtS(st.device.Mean),
				fmtS(st.network.Mean), fmtPct(st.netShare),
				fmt.Sprintf("%.2f s", st.total.Stddev))
			key := fmt.Sprintf("%s_%s", map[int]string{0: "3g", 1: "lte"}[pi], kind)
			r.Set(key+"_total_s", st.total.Mean)
			r.Set(key+"_device_s", st.device.Mean)
			r.Set(key+"_network_s", st.network.Mean)
			r.Set(key+"_netshare", st.netShare)
			r.Set(key+"_stddev_s", st.total.Stddev)
		}
	}
	r.Tables = []*metrics.Table{tbl}
	return r
}

// RunRLCBreakdown regenerates Fig. 8/9: the fine-grained network latency
// breakdown for the 2-photo upload, comparing 3G and LTE RLC behaviour.
func RunRLCBreakdown(seed int64, p Params, opts ...analyzer.Option) *Result {
	r := &Result{ID: "fig8", Title: "Fine-grained network latency breakdown, 2-photo upload (Fig. 8/9)"}
	const reps = 10

	tbl := &metrics.Table{
		Title:   "Fig. 8: per-component network latency (mean per upload)",
		Headers: []string{"Network", "IP-to-RLC", "RLC transmission", "First-hop OTA", "Other", "PDUs/upload"},
	}
	type agg struct {
		ipToRLC, rlcTx, ota, other float64
		pdus                       float64
		n                          int
	}
	results := map[string]agg{}
	for pi, mk := range []func() *radio.Profile{radio.Profile3G, radio.ProfileLTE} {
		name := []string{"C1 3G", "C1 LTE"}[pi]
		cl, entries := postRun(seed+int64(pi), mk(), facebook.PostPhotos, reps, opts...)
		var a agg
		for _, e := range entries {
			if !e.Observed {
				continue
			}
			// Break down the network portion of the QoE window: the span of
			// the responsible flow's packets.
			s := cl.SplitDeviceNetwork(analyzer.Calibrate(e))
			if s.Flow == nil {
				continue
			}
			first, last, n := s.Flow.WindowSpan(e.Start, e.End)
			if n < 2 {
				continue
			}
			bd := cl.BreakdownWindow(first, last)
			a.ipToRLC += bd.IPToRLC.Seconds()
			a.rlcTx += bd.RLCTransmission.Seconds()
			a.ota += bd.FirstHopOTA.Seconds()
			a.other += bd.Other.Seconds()
			a.pdus += float64(bd.PDUCount)
			a.n++
		}
		if a.n > 0 {
			f := float64(a.n)
			a.ipToRLC, a.rlcTx, a.ota, a.other, a.pdus = a.ipToRLC/f, a.rlcTx/f, a.ota/f, a.other/f, a.pdus/f
		}
		results[name] = a
		tbl.AddRow(name, fmtS(a.ipToRLC), fmtS(a.rlcTx), fmtS(a.ota), fmtS(a.other),
			fmt.Sprintf("%.0f", a.pdus))
		key := []string{"3g", "lte"}[pi]
		r.Set(key+"_ip_to_rlc_s", a.ipToRLC)
		r.Set(key+"_rlc_tx_s", a.rlcTx)
		r.Set(key+"_ota_s", a.ota)
		r.Set(key+"_other_s", a.other)
		r.Set(key+"_pdus", a.pdus)
	}
	if lte := results["C1 LTE"]; lte.pdus > 0 {
		r.Set("pdu_ratio_3g_over_lte", results["C1 3G"].pdus/lte.pdus)
	}
	if lte := results["C1 LTE"]; lte.rlcTx > 0 {
		r.Set("rlc_tx_ratio_3g_over_lte", results["C1 3G"].rlcTx/lte.rlcTx)
	}
	r.Tables = []*metrics.Table{tbl}
	return r
}
