package experiments

import (
	"fmt"
	"time"

	"repro/internal/apps/facebook"
	"repro/internal/apps/serversim"
	"repro/internal/core/analyzer"
	"repro/internal/core/controller"
	"repro/internal/core/qoe"
	"repro/internal/metrics"
	"repro/internal/radio"
	"repro/internal/testbed"
)

// feedRun reproduces the §7.4 testbed: a friend posts a status every 2
// minutes; the device under test measures each news-feed update, either
// self-triggered (ListView app 5.0) or via a scroll gesture every 2 minutes
// (WebView app 1.8.3). Returns the update measurements and the cross-layer
// analysis.
func feedRun(seed int64, variant string, prof *radio.Profile, horizon time.Duration, opts ...analyzer.Option) (*analyzer.CrossLayer, []qoe.BehaviorEntry) {
	webView := variant == serversim.VariantWebView
	cfg := facebook.Config{
		Variant:            variant,
		RefreshInterval:    0, // isolate update traffic
		SelfUpdateOnNotify: !webView,
		Subscribe:          true,
	}
	b := testbed.MustNew(testbed.Options{Seed: seed, Profile: prof, Facebook: cfg, DisableQxDM: true})
	b.Facebook.Connect()
	b.K.RunUntil(5 * time.Second)

	n := 0
	b.K.Ticker(2*time.Minute, func() {
		n++
		b.Servers.Facebook.InjectFriendPost(fmt.Sprintf("friend-%d", n), FriendPostBytes)
	})

	log := &qoe.BehaviorLog{}
	c := controller.New(b.K, b.Facebook.Screen, log)
	c.Timeout = 5 * time.Minute
	d := controller.NewFacebookDriver(c, webView)

	if webView {
		// Gesture-driven updates every 2 minutes.
		var loop func()
		loop = func() {
			d.PullToUpdate(func(qoe.BehaviorEntry) {
				b.K.After(2*time.Minute, loop)
			})
		}
		b.K.After(2*time.Minute+30*time.Second, loop)
	} else {
		// Passive: measure every self-update.
		var loop func()
		loop = func() {
			d.WaitSelfUpdate(func(qoe.BehaviorEntry) { loop() })
		}
		loop()
	}
	b.K.RunUntil(horizon)
	cl := analyzer.NewCrossLayer(b.Session(log), opts...)
	return cl, log.ByAction("pull_to_update")
}

// feedHorizon keeps the §7.4 run tractable: 2 simulated hours (~60 updates)
// instead of the paper's 6; the CDF shape is unchanged (see EXPERIMENTS.md).
const feedHorizon = 2 * time.Hour

var feedConds = []struct {
	key     string
	variant string
	prof    func() *radio.Profile
	label   string
}{
	{"lv_lte", serversim.VariantListView, radio.ProfileLTE, "ListView, LTE"},
	{"wv_lte", serversim.VariantWebView, radio.ProfileLTE, "WebView, LTE"},
	{"lv_wifi", serversim.VariantListView, radio.ProfileWiFi, "ListView, WiFi"},
	{"wv_wifi", serversim.VariantWebView, radio.ProfileWiFi, "WebView, WiFi"},
}

// RunFeedDesignCDF regenerates Fig. 14: the updating-time distribution.
func RunFeedDesignCDF(seed int64, p Params, opts ...analyzer.Option) *Result {
	r := &Result{ID: "fig14", Title: "News feed updating time, WebView vs ListView (Fig. 14)"}
	tbl := &metrics.Table{
		Title:   "Fig. 14: pull-to-update latency distribution (seconds)",
		Headers: []string{"Condition", "N", "p10", "p50", "p90", "Mean", "Stddev"},
	}
	series := map[string][]float64{}
	for i, c := range feedConds {
		cl, entries := feedRun(seed+int64(i), c.variant, c.prof(), feedHorizon, opts...)
		_ = cl
		var xs []float64
		for _, e := range entries {
			if e.Observed {
				xs = append(xs, analyzer.Calibrate(e).Calibrated.Seconds())
			}
		}
		series[c.label] = xs
		cdf := metrics.NewCDF(xs)
		s := metrics.Summarize(xs)
		tbl.AddRow(c.label, fmt.Sprintf("%d", len(xs)),
			fmtS(cdf.Quantile(0.1)), fmtS(cdf.Quantile(0.5)), fmtS(cdf.Quantile(0.9)),
			fmtS(s.Mean), fmt.Sprintf("%.2f", s.Stddev))
		r.Set(c.key+"_mean_s", s.Mean)
		r.Set(c.key+"_p50_s", cdf.Quantile(0.5))
		r.Set(c.key+"_stddev_s", s.Stddev)
		r.Set(c.key+"_n", float64(len(xs)))
	}
	if lv := r.Values["lv_lte_mean_s"]; lv > 0 {
		r.Set("wv_over_lv_lte", r.Values["wv_lte_mean_s"]/lv)
	}
	r.Tables = []*metrics.Table{tbl}
	r.Plots = []string{metrics.PlotCDFs("Fig. 14 CDF: news feed updating time", "seconds", series, 60, 14)}
	return r
}

// RunFeedDesignBreakdown regenerates Fig. 15: device vs network share of
// the update time for both designs.
func RunFeedDesignBreakdown(seed int64, p Params, opts ...analyzer.Option) *Result {
	r := &Result{ID: "fig15", Title: "Feed update breakdown, WebView vs ListView (Fig. 15)"}
	tbl := &metrics.Table{
		Title:   "Fig. 15: update latency breakdown (mean seconds)",
		Headers: []string{"Condition", "Total", "Device", "Network"},
	}
	for i, c := range feedConds {
		cl, entries := feedRun(seed+int64(i), c.variant, c.prof(), feedHorizon, opts...)
		st := splitOver(cl, entries)
		tbl.AddRow(c.label, fmtS(st.total.Mean), fmtS(st.device.Mean), fmtS(st.network.Mean))
		r.Set(c.key+"_device_s", st.device.Mean)
		r.Set(c.key+"_network_s", st.network.Mean)
	}
	// Finding 5: ListView cuts device latency >=67% and network >=30%.
	if wv := r.Values["wv_lte_device_s"]; wv > 0 {
		r.Set("device_reduction_lte", 1-r.Values["lv_lte_device_s"]/wv)
	}
	if wv := r.Values["wv_lte_network_s"]; wv > 0 {
		r.Set("network_reduction_lte", 1-r.Values["lv_lte_network_s"]/wv)
	}
	r.Tables = []*metrics.Table{tbl}
	return r
}

// RunFeedDesignData regenerates Fig. 16: network data per feed update.
func RunFeedDesignData(seed int64, p Params, opts ...analyzer.Option) *Result {
	r := &Result{ID: "fig16", Title: "Feed update data consumption, WebView vs ListView (Fig. 16)"}
	tbl := &metrics.Table{
		Title:   "Fig. 16: per-update Facebook data (KB)",
		Headers: []string{"Condition", "Updates", "Uplink/update", "Downlink/update"},
	}
	for i, c := range feedConds {
		cl, entries := feedRun(seed+int64(i), c.variant, c.prof(), feedHorizon, opts...)
		ul, dl := cl.DataConsumption(serversim.FacebookHost)
		n := 0
		for _, e := range entries {
			if e.Observed {
				n++
			}
		}
		if n == 0 {
			continue
		}
		ulPer, dlPer := kb(ul)/float64(n), kb(dl)/float64(n)
		tbl.AddRow(c.label, fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f KB", ulPer), fmt.Sprintf("%.1f KB", dlPer))
		r.Set(c.key+"_ul_kb", ulPer)
		r.Set(c.key+"_dl_kb", dlPer)
	}
	if lv := r.Values["lv_lte_dl_kb"]; lv > 0 {
		r.Set("wv_dl_overhead_lte", r.Values["wv_lte_dl_kb"]/lv-1)
	}
	r.Tables = []*metrics.Table{tbl}
	return r
}
