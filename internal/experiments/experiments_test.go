package experiments

// These tests are the reproduction gate: each asserts the qualitative shape
// the paper's corresponding table/figure reports — who wins, by roughly
// what factor, where the crossovers fall. Absolute values are recorded in
// EXPERIMENTS.md, not asserted. The heavier studies are skipped with
// -short.

import (
	"testing"
)

func TestRegistry(t *testing.T) {
	reg := Registry()
	if len(reg) != 20 {
		t.Fatalf("registry has %d experiments, want 20", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" || e.Goal == "" {
			t.Fatalf("incomplete experiment %q", e.ID)
		}
	}
	if _, ok := Lookup("fig7"); !ok {
		t.Fatal("Lookup failed for fig7")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup invented an experiment")
	}
}

func TestResultRender(t *testing.T) {
	r := &Result{ID: "x", Title: "test"}
	r.Set("a", 1.5)
	out := r.Render()
	if out == "" || r.Values["a"] != 1.5 {
		t.Fatal("render/set broken")
	}
}

// want asserts a key's value lies within [lo, hi].
func want(t *testing.T, r *Result, key string, lo, hi float64) {
	t.Helper()
	v, ok := r.Values[key]
	if !ok {
		t.Fatalf("%s: key %q missing (have %v)", r.ID, key, r.Values)
	}
	if v < lo || v > hi {
		t.Errorf("%s: %s = %.4f, want within [%.4f, %.4f]", r.ID, key, v, lo, hi)
	}
}

func TestAccuracyShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	r := RunAccuracy(42, Params{})
	// Table 3: error <= 40 ms, mapping ~99.5%/~88.8%, CPU overhead single
	// digits.
	want(t, r, "latency_err_ms", 0, 40)
	want(t, r, "mapping_ul", 0.985, 1.0)
	want(t, r, "mapping_dl", 0.83, 0.94)
	want(t, r, "cpu_overhead", 0.01, 0.12)
	// Fig. 6: every per-metric error ratio stays in the few-percent band.
	for _, k := range []string{"post_ratio", "pull_ratio", "yt_rebuf_ratio", "web_ratio"} {
		want(t, r, k, 0, 0.055)
	}
}

func TestPostBreakdownShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	r := RunPostBreakdown(42, Params{})
	// Finding 1: the network is off the critical path for status/check-in.
	want(t, r, "3g_status_netshare", 0, 0.05)
	want(t, r, "lte_status_netshare", 0, 0.05)
	want(t, r, "3g_checkin_netshare", 0, 0.05)
	// Finding 2: network dominates photo posting; >65% on 3G.
	want(t, r, "3g_photos_netshare", 0.65, 1)
	want(t, r, "lte_photos_netshare", 0.4, 1)
	// 3G photo network latency well above LTE.
	if r.Values["3g_photos_network_s"] <= 1.4*r.Values["lte_photos_network_s"] {
		t.Errorf("3G photo network latency (%.2f) not >=1.4x LTE (%.2f)",
			r.Values["3g_photos_network_s"], r.Values["lte_photos_network_s"])
	}
}

func TestRLCBreakdownShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	r := RunRLCBreakdown(42, Params{})
	// Fig. 8: ~2.55x more PDUs on 3G; RLC transmission delay dominates and
	// far exceeds LTE's.
	want(t, r, "pdu_ratio_3g_over_lte", 1.8, 3.5)
	if r.Values["3g_rlc_tx_s"] <= 2*r.Values["lte_rlc_tx_s"] {
		t.Errorf("3G RLC tx (%.2f) not >> LTE (%.2f)",
			r.Values["3g_rlc_tx_s"], r.Values["lte_rlc_tx_s"])
	}
	// The components are each nonneg and RLC tx is the largest 3G share.
	for _, k := range []string{"3g_ip_to_rlc_s", "3g_ota_s", "3g_other_s"} {
		if r.Values[k] < 0 || r.Values[k] > r.Values["3g_rlc_tx_s"] {
			t.Errorf("3G component %s = %.2f exceeds RLC tx %.2f", k, r.Values[k], r.Values["3g_rlc_tx_s"])
		}
	}
}

func TestBackgroundDataShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	r := RunBackgroundData(42, Params{})
	// Fig. 10: monotone in posting frequency, with a nonzero floor.
	if !(r.Values["freq_0_total_kb"] > r.Values["freq_1_total_kb"] &&
		r.Values["freq_1_total_kb"] > r.Values["freq_2_total_kb"] &&
		r.Values["freq_2_total_kb"] > r.Values["freq_3_total_kb"]) {
		t.Errorf("background data not monotone: %v", r.Values)
	}
	// Finding 3: ~200 KB/day with zero friend activity.
	want(t, r, "none_daily_kb", 100, 400)
}

func TestBackgroundEnergyShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	r := RunBackgroundEnergy(42, Params{})
	if r.Values["freq_0_total_j"] <= r.Values["freq_3_total_j"] {
		t.Errorf("energy not increasing with post frequency: %v", r.Values)
	}
	// Finding 3: a few hundred joules per day.
	want(t, r, "none_daily_j", 80, 600)
}

func TestRefreshShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	d := RunRefreshData(42, Params{})
	// Finding 4: 2h vs default 1h saves >=20% data.
	want(t, d, "saving_2h_vs_1h", 0.20, 0.40)
	e := RunRefreshEnergy(42, Params{})
	want(t, e, "saving_2h_vs_1h", 0.10, 0.35)
}

func TestFeedDesignShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	cdf := RunFeedDesignCDF(42, Params{})
	// Fig. 14: WebView >2x slower, higher variance.
	want(t, cdf, "wv_over_lv_lte", 2, 8)
	if cdf.Values["wv_lte_stddev_s"] <= cdf.Values["lv_lte_stddev_s"] {
		t.Errorf("WebView variance (%.3f) not above ListView (%.3f)",
			cdf.Values["wv_lte_stddev_s"], cdf.Values["lv_lte_stddev_s"])
	}
	bd := RunFeedDesignBreakdown(42, Params{})
	// Finding 5: device latency -67%+, network latency -30%+.
	want(t, bd, "device_reduction_lte", 0.67, 1)
	want(t, bd, "network_reduction_lte", 0.30, 1)
	data := RunFeedDesignData(42, Params{})
	// Fig. 16: WebView downloads >=77% more per update.
	want(t, data, "wv_dl_overhead_lte", 0.5, 2)
}

func TestThrottleShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	r := RunThrottleCDF(42, Params{})
	// Finding 6: initial loading multiplied many-fold; rebuffering from ~0
	// to >50%.
	want(t, r, "init_multiplier_3g", 5, 40)
	want(t, r, "init_multiplier_lte", 20, 90)
	want(t, r, "3g_free_rebuf_mean", 0, 0.02)
	want(t, r, "3g_capped_rebuf_mean", 0.45, 0.95)
	want(t, r, "lte_capped_rebuf_mean", 0.5, 0.95)
	// Finding 7 direction: policing (LTE) hurts more than shaping (3G).
	if r.Values["lte_capped_rebuf_mean"] <= r.Values["3g_capped_rebuf_mean"] {
		t.Errorf("LTE policed rebuffering (%.3f) not above 3G shaped (%.3f)",
			r.Values["lte_capped_rebuf_mean"], r.Values["3g_capped_rebuf_mean"])
	}
	if r.Values["lte_capped_init_mean_s"] <= r.Values["3g_capped_init_mean_s"] {
		t.Errorf("LTE policed init (%.1fs) not above 3G shaped (%.1fs)",
			r.Values["lte_capped_init_mean_s"], r.Values["3g_capped_init_mean_s"])
	}
}

func TestShapeVsPoliceShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	r := RunShapeVsPolice(42, Params{})
	// Finding 7: policing drops packets -> many TCP retransmissions;
	// shaping queues them -> almost none.
	if r.Values["lte_retransmissions"] < 10*max1(r.Values["3g_retransmissions"]) {
		t.Errorf("LTE retx (%.0f) not >> 3G retx (%.0f)",
			r.Values["lte_retransmissions"], r.Values["3g_retransmissions"])
	}
}

func max1(v float64) float64 {
	if v < 1 {
		return 1
	}
	return v
}

func TestRateSweepShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	rb := RunRebufferVsRate(42, Params{})
	// Fig. 19: rebuffering falls with rate; LTE >= 3G at every rate.
	if rb.Values["3g_100k"] <= rb.Values["3g_500k"] {
		t.Errorf("3G rebuffering not decreasing with rate: %v", rb.Values)
	}
	for _, rate := range []string{"100k", "200k", "300k", "400k", "500k"} {
		if rb.Values["lte_"+rate] < rb.Values["3g_"+rate]-0.05 {
			t.Errorf("rate %s: LTE rebuffering (%.3f) below 3G (%.3f)",
				rate, rb.Values["lte_"+rate], rb.Values["3g_"+rate])
		}
	}
	il := RunInitLoadVsRate(42, Params{})
	// Fig. 20: loading falls with rate; LTE consistently above 3G.
	if il.Values["3g_100k"] <= il.Values["3g_500k"] {
		t.Errorf("3G init loading not decreasing with rate: %v", il.Values)
	}
	for _, rate := range []string{"200k", "300k", "400k", "500k"} {
		if il.Values["lte_"+rate] < il.Values["3g_"+rate]-1 {
			t.Errorf("rate %s: LTE init (%.1fs) below 3G (%.1fs)",
				rate, il.Values["lte_"+rate], il.Values["3g_"+rate])
		}
	}
}

func TestAdsShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	r := RunAdsImpact(42, Params{})
	// §7.6: on cellular, total spinner time roughly doubles with ads...
	want(t, r, "lte_total_ratio_with_ads", 1.5, 3)
	// ...while WiFi preloading keeps the main video's own loading at ~0.
	want(t, r, "wifi_ads_on_main_s", 0, 0.1)
	if r.Values["wifi_ads_on_total_s"] > 1.5*r.Values["wifi_ads_off_total_s"] {
		t.Errorf("WiFi total with ads (%.2f) should not balloon vs without (%.2f)",
			r.Values["wifi_ads_on_total_s"], r.Values["wifi_ads_off_total_s"])
	}
}

func TestRRCSimplifyShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	r := RunRRCSimplify(42, Params{})
	// §7.7: ~22.8% page-load reduction from the simplified machine.
	want(t, r, "reduction", 0.15, 0.32)
	if r.Values["lte_mean_s"] >= r.Values["simplified3g_mean_s"] {
		t.Errorf("LTE (%.2fs) should beat even simplified 3G (%.2fs)",
			r.Values["lte_mean_s"], r.Values["simplified3g_mean_s"])
	}
}

func TestVideoSampleDeterministic(t *testing.T) {
	a := videoSample(7, 20)
	b := videoSample(7, 20)
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("sample sizes: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("video sample not deterministic")
		}
	}
	seen := map[string]bool{}
	for _, id := range a {
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
		if len(id) != 2 || id[0] < 'a' || id[0] > 'z' || id[1] < '0' || id[1] > '9' {
			t.Fatalf("malformed id %q", id)
		}
	}
}
