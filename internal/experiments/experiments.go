// Package experiments regenerates every table and figure of the paper's
// evaluation (§7). Each experiment is a pure function of a seed: it builds
// fresh testbeds, drives them with the QoE-aware UI controller, feeds the
// collected logs to the multi-layer analyzer, and returns both
// paper-style rendered tables and a machine-readable map of key values
// (asserted by bench_test.go and recorded in EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core/analyzer"
	"repro/internal/fleet"
	"repro/internal/metrics"
)

// Params carries the scenario knobs shared by every experiment: how long to
// run, how many devices and cells, how hard to impair the network, and
// whether the remediation controller is in the loop. The zero value always
// reproduces the experiment's paper-exact defaults (golden outputs are
// asserted against it); a non-zero field overrides only the knob it names,
// and experiments ignore knobs that have no meaning for them (a single-UE
// paper figure has no population to scale).
type Params struct {
	// Horizon bounds the run's virtual time (0 = experiment default).
	Horizon time.Duration
	// UEs overrides the fleet population of multi-UE experiments.
	UEs int
	// Cells overrides the topology size of multi-cell experiments.
	Cells int
	// SpeedMps overrides the mobility speed of handover experiments.
	SpeedMps float64
	// LossRate overrides the injected mean loss rate of impairment
	// experiments (the sweep collapses to {0, LossRate}).
	LossRate float64
	// ThrottleBps overrides the carrier throttle rate of throttling
	// experiments (sweeps collapse to the one rate).
	ThrottleBps float64
	// Remedy puts the fleet's remediation controller in the loop for
	// experiments that support it (nil = controller-free).
	Remedy *fleet.RemedySpec
}

// Per-experiment default resolution: each helper returns the override when
// set, the experiment's own default otherwise.
func (p Params) horizon(def time.Duration) time.Duration {
	if p.Horizon > 0 {
		return p.Horizon
	}
	return def
}

func (p Params) ues(def int) int {
	if p.UEs > 0 {
		return p.UEs
	}
	return def
}

func (p Params) cells(def int) int {
	if p.Cells > 0 {
		return p.Cells
	}
	return def
}

func (p Params) speed(def float64) float64 {
	if p.SpeedMps > 0 {
		return p.SpeedMps
	}
	return def
}

func (p Params) throttle(def float64) float64 {
	if p.ThrottleBps > 0 {
		return p.ThrottleBps
	}
	return def
}

// Result is one experiment's output.
type Result struct {
	ID    string
	Title string
	// Tables render the paper-style rows/series.
	Tables []*metrics.Table
	// Plots are ASCII renderings of the figure curves (CDFs etc.).
	Plots []string
	// Values holds the key metrics by name, for programmatic checks.
	Values map[string]float64
}

// Set records a key metric.
func (r *Result) Set(key string, v float64) {
	if r.Values == nil {
		r.Values = make(map[string]float64)
	}
	r.Values[key] = v
}

// Render formats the full result.
func (r *Result) Render() string {
	out := fmt.Sprintf("=== %s: %s ===\n", r.ID, r.Title)
	for _, t := range r.Tables {
		out += "\n" + t.String()
	}
	for _, p := range r.Plots {
		out += "\n" + p
	}
	if len(r.Values) > 0 {
		keys := make([]string, 0, len(r.Values))
		for k := range r.Values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out += "\nkey values:\n"
		for _, k := range keys {
			out += fmt.Sprintf("  %-44s %.4f\n", k, r.Values[k])
		}
	}
	return out
}

// Experiment is a registered, reproducible experiment. Run is a pure
// function of the seed and Params (Params{} reproduces the paper-exact
// defaults); the optional analyzer options select the cross-layer engine
// per call (the engine-equivalence golden test runs every experiment under
// both), replacing the retired process-wide analyzer.SetEngine default.
type Experiment struct {
	ID    string
	Title string // the paper artifact it regenerates
	Goal  string // Table 2's experiment-goal column
	Run   func(seed int64, p Params, opts ...analyzer.Option) *Result
}

// Registry lists every experiment in paper order (Table 2 plus the tool
// evaluation of §7.1).
func Registry() []Experiment {
	return []Experiment{
		{"table3", "Tool accuracy and overhead summary (Table 3, Fig. 6)",
			"Measurement error, mapping ratio, CPU overhead", RunAccuracy},
		{"fig7", "Device and network delay breakdown for post uploads (Fig. 7)",
			"Device and network delay on the critical path", RunPostBreakdown},
		{"fig8", "Fine-grained network latency breakdown for 2-photo upload (Fig. 8/9)",
			"3G RLC transmission delay vs LTE", RunRLCBreakdown},
		{"fig10", "Background data consumption by post upload frequency (Fig. 10)",
			"Data consumption during application idle time", RunBackgroundData},
		{"fig11", "Background energy consumption by post upload frequency (Fig. 11)",
			"Energy consumption during application idle time", RunBackgroundEnergy},
		{"fig12", "Data consumption by refresh interval (Fig. 12)",
			"Impact of the refresh-interval configuration", RunRefreshData},
		{"fig13", "Energy consumption by refresh interval (Fig. 13)",
			"Impact of the refresh-interval configuration", RunRefreshEnergy},
		{"fig14", "News feed updating time, WebView vs ListView (Fig. 14)",
			"Impact of app design choices on user-perceived latency", RunFeedDesignCDF},
		{"fig15", "Update-time device/network breakdown, WV vs LV (Fig. 15)",
			"Impact of app design choices on user-perceived latency", RunFeedDesignBreakdown},
		{"fig16", "Network data consumption for feed updates, WV vs LV (Fig. 16)",
			"Impact of app design choices on data consumption", RunFeedDesignData},
		{"fig17", "Rebuffering ratio and initial loading CDFs under throttling (Fig. 17)",
			"Impact of carrier throttling on user-perceived latency", RunThrottleCDF},
		{"fig18", "Throughput: 3G traffic shaping vs LTE traffic policing (Fig. 18)",
			"Throttling mechanism comparison", RunShapeVsPolice},
		{"fig19", "Rebuffering ratio vs throttled bandwidth (Fig. 19)",
			"Throttling rate sweep", RunRebufferVsRate},
		{"fig20", "Initial loading time vs throttled bandwidth (Fig. 20)",
			"Throttling rate sweep", RunInitLoadVsRate},
		{"sec7.6", "Impact of video ads on user-perceived latency (§7.6)",
			"Impact of video ads on user-perceived latency", RunAdsImpact},
		{"sec7.7", "Impact of the RRC state machine design on page loads (§7.7)",
			"Impact of the RRC state machine design", RunRRCSimplify},
		{"faults", "QoE vs injected network impairment (loss/outage sweep)",
			"Graceful degradation under loss, jitter, and bearer outages", RunImpairmentSweep},
		{"fleet", "Per-UE QoE vs cell population (fleet contention)",
			"Cross-UE contention on a shared cell", RunFleetContention},
		{"handover", "QoE under a handover storm (multi-cell mobility)",
			"Handover interruption cost across a sharded multi-cell fleet", RunHandoverStorm},
		{"remedy", "Closed-loop QoE remediation (counterfactual A/B)",
			"Per-intervention QoE delta and energy cost of the control plane", RunRemedy},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func kb(bytes int) float64 { return float64(bytes) / 1024 }

func fmtS(v float64) string  { return fmt.Sprintf("%.2f s", v) }
func fmtKB(v float64) string { return fmt.Sprintf("%.0f KB", v) }
func fmtJ(v float64) string  { return fmt.Sprintf("%.0f J", v) }
func fmtPct(v float64) string {
	return fmt.Sprintf("%.1f%%", 100*v)
}
