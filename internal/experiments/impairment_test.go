package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/apps/youtube"
	"repro/internal/core/analyzer"
	"repro/internal/core/controller"
	"repro/internal/core/qoe"
	"repro/internal/faults"
	"repro/internal/testbed"
)

// acceptanceRun executes the robustness acceptance scenario — 2% GE burst
// loss, a 3 s bearer outage mid-playback, and QxDM disabled partway through
// the run — and returns a fingerprint of everything observable, so two runs
// can be compared byte-for-byte.
func acceptanceRun(t *testing.T, seed int64) string {
	t.Helper()
	ge := faults.GEForMeanLoss(0.02, 4)
	b := testbed.MustNew(testbed.Options{
		Seed: seed,
		Faults: &faults.Plan{
			GE:      &ge,
			Outages: []faults.Outage{{Start: 20 * time.Second, Duration: 3 * time.Second}},
		},
		YouTube: youtube.Config{StallTimeout: 60 * time.Second},
	})
	b.YouTube.Connect()
	b.K.RunUntil(2 * time.Second)
	// Carrier throttling on top of the impairment chain: keeps the playback
	// buffer shallow so the outage shows up at the UI layer, and exercises
	// the fault-then-throttle qdisc composition.
	b.Throttle(450e3)

	log := &qoe.BehaviorLog{}
	c := controller.New(b.K, b.YouTube.Screen, log)
	c.Timeout = 30 * time.Minute
	c.Instrumentation().SetPollInterval(150 * time.Millisecond)
	d := &controller.YouTubeDriver{C: c}

	var st controller.WatchStats
	var got bool
	// "y2" is one of the longest catalog videos, so the t=20s outage lands
	// mid-playback.
	if err := d.SearchAndPlay("y", 2, func(s controller.WatchStats) { st, got = s, true }); err != nil {
		t.Fatalf("SearchAndPlay: %v", err)
	}
	// Kill radio logging mid-run: the analyzer must warn, not fail.
	b.K.After(38*time.Second, func() { b.QxDM.SetEnabled(false) })
	b.K.RunUntil(b.K.Now() + 30*time.Minute)

	if !got || !st.InitialLoading.Observed {
		t.Fatal("playback never started under impairment")
	}
	if len(st.Rebuffers) < 1 {
		t.Fatalf("expected >=1 rebuffer event under 2%% loss + 3s outage, got %d", len(st.Rebuffers))
	}
	if n := b.Net.Bearer.OutageCount(); n != 1 {
		t.Fatalf("outage count = %d, want 1", n)
	}

	sess := b.Session(log)
	xl := analyzer.NewCrossLayer(sess)
	retx := 0
	for _, f := range xl.Flows.Flows {
		retx += f.Retransmissions
	}
	if retx == 0 {
		t.Fatal("no TCP retransmissions recorded under 2% burst loss")
	}
	truncated := false
	for _, w := range xl.Warnings {
		if strings.Contains(w, "truncated") {
			truncated = true
		}
	}
	if !truncated {
		t.Fatalf("analyzer did not warn about the truncated QxDM log; warnings: %v", xl.Warnings)
	}

	var lastPkt int64
	if n := len(sess.Packets); n > 0 {
		lastPkt = int64(sess.Packets[n-1].At)
	}
	return fmt.Sprintf("init=%d end=%d rebuf=%d stalls=%d retx=%d dropsUL=%d dropsDL=%d pkts=%d last=%d warn=%q",
		st.InitialLoading.RawLatency(), st.PlaybackEnd, int(st.RebufferRatio()*1e6),
		len(st.Rebuffers), retx, b.FaultUL.Dropped(), b.FaultDL.Dropped(),
		len(sess.Packets), lastPkt, strings.Join(xl.Warnings, "|"))
}

// TestImpairmentAcceptance is the PR's acceptance scenario: the full
// pipeline survives burst loss plus a mid-playback bearer outage with no
// panic and no kernel deadlock, the transport layer shows the injected
// loss, the UI layer shows the stall, the analyzer flags the truncated
// radio log — and the entire run is byte-identical when repeated with the
// same seed.
func TestImpairmentAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	a := acceptanceRun(t, 7)
	b := acceptanceRun(t, 7)
	if a != b {
		t.Fatalf("same seed produced different runs:\n run1: %s\n run2: %s", a, b)
	}
	c := acceptanceRun(t, 8)
	if a == c {
		t.Fatal("different seeds produced identical fingerprints (suspicious)")
	}
}

// TestImpairmentSweepSmoke runs the registered sweep end-to-end and checks
// the cross-layer signal direction: more loss, more retransmissions.
func TestImpairmentSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	r := RunImpairmentSweep(11, Params{})
	if r.Values["loss_0pct_retx"] > 0 {
		t.Fatalf("retransmissions on a perfect network: %v", r.Values["loss_0pct_retx"])
	}
	if r.Values["loss_2pct_retx"] == 0 {
		t.Fatal("no retransmissions under 2% GE loss")
	}
	if r.Values["loss_2pct_drops"] == 0 {
		t.Fatal("fault chains dropped nothing under 2% GE loss")
	}
	if r.Values["outage_3s_count"] != 1 {
		t.Fatalf("outage_3s_count = %v, want 1", r.Values["outage_3s_count"])
	}
}
