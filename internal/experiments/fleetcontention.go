package experiments

import (
	"fmt"
	"time"

	"repro/internal/core/analyzer"

	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/radio"
)

// RunFleetContention measures how per-UE QoE degrades as a cell fills up:
// the same browse workload runs on fleets of 1 and 8 UEs under both cell
// schedulers, and the per-UE pageload percentiles, RRC transition counts,
// and radio energy are compared. The paper measures one UE at a time; this
// study supplies the carrier-scale context (ERRANT-style cell contention)
// that makes the RRC findings matter — promotion storms and queueing delay
// emerge from bearers competing for one air interface.
func RunFleetContention(seed int64, p Params, opts ...analyzer.Option) *Result {
	res := &Result{ID: "fleet", Title: "Per-UE QoE vs cell population (fleet contention)"}
	tbl := &metrics.Table{Headers: []string{
		"UEs", "Sched", "Pageload p50", "Pageload p95", "RRC trans (mean)", "Energy (mean)",
	}}

	for _, n := range []int{1, p.ues(8)} {
		for _, policy := range []radio.SchedPolicy{radio.SchedRoundRobin, radio.SchedPropFair} {
			if n == 1 && policy == radio.SchedPropFair {
				continue // one bearer: scheduling policy cannot matter
			}
			ues := fleet.SpreadGains(fleet.UniformUEs(n), 0.6, 1.4)
			if p.ThrottleBps > 0 {
				for i := range ues {
					ues[i].ThrottleBps = p.ThrottleBps
				}
			}
			scen := fleet.Scenario{
				Seed: seed,
				Cell: fleet.CellSpec{Profile: radio.ProfileLTE(), Policy: policy},
				UEs:  ues,
				Workload: fleet.BrowseWorkload{
					Pages:     3,
					ThinkTime: 8 * time.Second,
				},
				Remedy: p.Remedy,
			}
			rep, err := fleet.Run(scen, fleet.WithHorizon(p.horizon(5*time.Minute)), fleet.WithAnalyzer(opts...))
			if err != nil {
				res.Set(fmt.Sprintf("error/%s/n%d", policy, n), 1)
				continue
			}
			p50, _ := rep.Value("pageload_s", "p50")
			p95, _ := rep.Value("pageload_s", "p95")
			trans, _ := rep.Value("rrc_transitions", "mean")
			energy, _ := rep.Value("rrc_energy_j", "mean")
			tbl.AddRow(fmt.Sprintf("%d", n), policy.String(),
				fmtS(p50), fmtS(p95), fmt.Sprintf("%.1f", trans), fmtJ(energy))
			key := func(m string) string { return fmt.Sprintf("%s/%s/n%d", m, policy, n) }
			res.Set(key("pageload_p50_s"), p50)
			res.Set(key("pageload_p95_s"), p95)
			res.Set(key("rrc_transitions_mean"), trans)
			res.Set(key("rrc_energy_mean_j"), energy)
		}
	}
	res.Tables = append(res.Tables, tbl)
	return res
}
