// Command traceview inspects the raw logs qoedoctor writes: libpcap traces
// (flows, DNS associations, retransmissions) and QxDM radio logs (RRC
// timeline, PDU statistics, first-hop OTA RTT). Given both, it also runs
// the IP-to-RLC long-jump mapping and reports the per-direction ratios and
// failure diagnostics.
//
// Usage:
//
//	traceview -pcap trace.pcap [-device 10.20.0.2]
//	traceview -qxdm radio.json
//	traceview -pcap trace.pcap -qxdm radio.json    # adds cross-layer mapping
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"time"

	"repro/internal/core/analyzer"
	"repro/internal/metrics"
	"repro/internal/pcap"
	"repro/internal/qxdm"
	"repro/internal/radio"
)

func main() {
	pcapPath := flag.String("pcap", "", "libpcap trace to inspect")
	qxdmPath := flag.String("qxdm", "", "QxDM JSON log to inspect")
	device := flag.String("device", "10.20.0.2", "device address (orients flows)")
	flag.Parse()
	if *pcapPath == "" && *qxdmPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	devAddr, err := netip.ParseAddr(*device)
	if err != nil {
		fatal("bad device address: %v", err)
	}

	var records []pcap.Record
	if *pcapPath != "" {
		records, err = pcap.ReadFile(*pcapPath)
		if err != nil {
			fatal("reading pcap: %v", err)
		}
		showFlows(records, devAddr)
	}

	var log *qxdm.Log
	if *qxdmPath != "" {
		log, err = qxdm.ReadFile(*qxdmPath)
		if err != nil {
			fatal("reading qxdm log: %v", err)
		}
		showRadio(log)
	}

	if records != nil && log != nil {
		showMapping(records, log, devAddr)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "traceview: "+format+"\n", args...)
	os.Exit(1)
}

func showFlows(records []pcap.Record, dev netip.Addr) {
	rep := analyzer.ExtractFlows(records, dev)
	fmt.Printf("== %d frames, %d TCP flows, %d resolved hostnames ==\n",
		len(records), len(rep.Flows), len(rep.DNSNames))
	tbl := &metrics.Table{Headers: []string{
		"Start", "Flow", "Host", "UL B", "DL B", "Retx", "HS RTT", "Mean RTT", "Duration"}}
	for _, f := range rep.Flows {
		tbl.AddRow(
			fmt.Sprintf("%.3fs", time.Duration(f.Start).Seconds()),
			fmt.Sprintf("%s>%s", f.Device, f.Server), f.Host,
			fmt.Sprintf("%d", f.ULBytes), fmt.Sprintf("%d", f.DLBytes),
			fmt.Sprintf("%d", f.Retransmissions),
			fmt.Sprintf("%.0fms", f.HandshakeRTT.Seconds()*1000),
			fmt.Sprintf("%.0fms", f.MeanRTT().Seconds()*1000),
			fmt.Sprintf("%.1fs", f.Duration().Seconds()))
	}
	fmt.Print(tbl.String())
	fmt.Printf("totals: UL %d bytes, DL %d bytes\n\n", rep.TotalUL, rep.TotalDL)
}

func showRadio(log *qxdm.Log) {
	fmt.Printf("== QxDM log (%s): %d transitions, %d PDUs, %d STATUS ==\n",
		log.Profile, len(log.Transitions), len(log.PDUs), len(log.Statuses))
	tbl := &metrics.Table{Headers: []string{"At", "Transition", "Trigger"}}
	for i, tr := range log.Transitions {
		if i >= 30 {
			tbl.AddRow("...", fmt.Sprintf("(%d more)", len(log.Transitions)-30), "")
			break
		}
		trigger := "demotion timer"
		if tr.Promotion {
			trigger = "data activity"
		}
		tbl.AddRow(fmt.Sprintf("%.3fs", time.Duration(tr.At).Seconds()),
			fmt.Sprintf("%v -> %v", tr.From, tr.To), trigger)
	}
	fmt.Print(tbl.String())

	for _, dir := range []radio.Direction{radio.Uplink, radio.Downlink} {
		n, bytes, polls, retx := 0, 0, 0, 0
		for _, p := range log.PDUs {
			if p.Dir != dir {
				continue
			}
			n++
			bytes += p.Size
			if p.Poll {
				polls++
			}
			if p.Retx {
				retx++
			}
		}
		samples := analyzer.OTARTTSamples(log, dir)
		var mean time.Duration
		for _, s := range samples {
			mean += s
		}
		if len(samples) > 0 {
			mean /= time.Duration(len(samples))
		}
		fmt.Printf("%s: %d PDUs (%d bytes), %d polls, %d retx, first-hop OTA RTT mean %.0fms over %d samples\n",
			dir, n, bytes, polls, retx, mean.Seconds()*1000, len(samples))
	}
	fmt.Println()
}

func showMapping(records []pcap.Record, log *qxdm.Log, dev netip.Addr) {
	var ul, dl []analyzer.MappedPacket
	for i := range records {
		p, err := records[i].Packet()
		if err != nil {
			continue
		}
		mp := analyzer.MappedPacket{At: records[i].At, Data: records[i].Data}
		if p.Src.Addr == dev {
			ul = append(ul, mp)
		} else {
			dl = append(dl, mp)
		}
	}
	var ulPDUs, dlPDUs []qxdm.PDURecord
	for _, p := range log.PDUs {
		if p.Dir == radio.Uplink {
			ulPDUs = append(ulPDUs, p)
		} else {
			dlPDUs = append(dlPDUs, p)
		}
	}
	fmt.Println("== IP-to-RLC long-jump mapping ==")
	for _, c := range []struct {
		name    string
		packets []analyzer.MappedPacket
		pdus    []qxdm.PDURecord
	}{{"uplink", ul, ulPDUs}, {"downlink", dl, dlPDUs}} {
		res := analyzer.LongJumpMap(c.packets, c.pdus)
		fmt.Printf("%s: %d/%d packets mapped (%.2f%%); cursor-walk diagnostics: %v\n",
			c.name, res.Mapped, res.Total, 100*res.Ratio(),
			analyzer.DiagnoseMap(c.packets, c.pdus))
	}
}
