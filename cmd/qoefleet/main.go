// Command qoefleet runs a multi-UE fleet scenario: N simulated devices
// share one cell, a workload drives every device, and the per-UE QoE
// reports are aggregated into fleet KPIs (p50/p95/p99 rebuffer ratio,
// pageload, RRC energy).
//
// Usage:
//
//	qoefleet -ues 8                       # 8 UEs, round-robin, browse
//	qoefleet -ues 64 -policy pf -workload youtube
//	qoefleet -ues 8 -gains 0.5:1.5        # linear link-quality spread
//	qoefleet -ues 4 -trace fleet.json     # per-UE Chrome trace processes
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/core/analyzer"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/radio"
)

func profileByName(name string) *radio.Profile {
	switch name {
	case "3g":
		return radio.Profile3G()
	case "3g-simple":
		return radio.ProfileSimplified3G()
	case "wifi":
		return radio.ProfileWiFi()
	case "lte", "":
		return radio.ProfileLTE()
	}
	fmt.Fprintf(os.Stderr, "qoefleet: unknown network %q\n", name)
	os.Exit(1)
	return nil
}

func main() {
	ues := flag.Int("ues", 8, "number of UEs sharing the cell")
	policy := flag.String("policy", "rr", "cell scheduler: rr (round-robin) | pf (proportional fair)")
	workload := flag.String("workload", "browse", "workload: youtube | browse | facebook")
	network := flag.String("network", "lte", "lte | 3g | 3g-simple | wifi")
	seed := flag.Int64("seed", 1, "simulation seed")
	horizon := flag.Duration("horizon", 10*time.Minute, "virtual-time run length")
	gains := flag.String("gains", "", "linear link-quality spread lo:hi across UEs (default: all 1)")
	engine := flag.String("analyzer", "parallel", "analyzer engine: parallel | serial")
	traceOut := flag.String("trace", "", "write a merged Chrome trace (one process per UE) to this file")
	flag.Parse()

	if *ues <= 0 {
		fmt.Fprintf(os.Stderr, "qoefleet: -ues must be positive\n")
		os.Exit(1)
	}
	pol, err := radio.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoefleet: %v\n", err)
		os.Exit(1)
	}
	wl, err := fleet.ParseWorkload(*workload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoefleet: %v\n", err)
		os.Exit(1)
	}

	specs := fleet.UniformUEs(*ues)
	if *gains != "" {
		var lo, hi float64
		if _, err := fmt.Sscanf(strings.Replace(*gains, ":", " ", 1), "%g %g", &lo, &hi); err != nil || lo <= 0 || hi <= 0 {
			fmt.Fprintf(os.Stderr, "qoefleet: bad -gains %q (want lo:hi, both positive)\n", *gains)
			os.Exit(1)
		}
		fleet.SpreadGains(specs, lo, hi)
	}

	opts := []fleet.Option{fleet.WithHorizon(*horizon)}
	switch *engine {
	case "parallel", "":
		opts = append(opts, fleet.WithEngine(analyzer.EngineParallel))
	case "serial":
		opts = append(opts, fleet.WithEngine(analyzer.EngineSerial))
	default:
		fmt.Fprintf(os.Stderr, "qoefleet: unknown analyzer engine %q (parallel | serial)\n", *engine)
		os.Exit(1)
	}
	if *traceOut != "" {
		opts = append(opts, fleet.WithTrace())
	}

	scen := fleet.Scenario{
		Seed:     *seed,
		Cell:     fleet.CellSpec{Profile: profileByName(*network), Policy: pol},
		UEs:      specs,
		Workload: wl,
	}
	f, err := fleet.Build(scen, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoefleet: %v\n", err)
		os.Exit(1)
	}
	f.Drive()
	f.K.RunUntil(*horizon)
	f.CloseObs()
	fmt.Print(f.Report().Render())

	if *traceOut != "" {
		procs := make([]obs.Process, len(f.UEs))
		total := 0
		for i, ue := range f.UEs {
			procs[i] = obs.Process{Pid: i + 1, Name: ue.Name, Events: ue.Trace.Events()}
			total += len(procs[i].Events)
		}
		writeOrDie(*traceOut, func(w io.Writer) error { return obs.WriteChromeTraceMulti(w, procs) })
		fmt.Printf("wrote %d trace events (%d UE processes) to %s\n", total, len(procs), *traceOut)
	}
}

// writeOrDie creates path and writes it with fn, exiting on any error.
func writeOrDie(path string, fn func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoefleet: %v\n", err)
		os.Exit(1)
	}
	err = fn(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoefleet: writing %s: %v\n", path, err)
		os.Exit(1)
	}
}
