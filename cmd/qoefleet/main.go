// Command qoefleet runs a multi-UE fleet scenario: N simulated devices
// share one cell, a workload drives every device, and the per-UE QoE
// reports are aggregated into fleet KPIs (p50/p95/p99 rebuffer ratio,
// pageload, RRC energy).
//
// Usage:
//
//	qoefleet -ues 8                       # 8 UEs, round-robin, browse
//	qoefleet -ues 64 -policy pf -workload youtube
//	qoefleet -ues 8 -gains 0.5:1.5        # linear link-quality spread
//	qoefleet -ues 4 -trace fleet.json     # per-UE Chrome trace processes
//	qoefleet -ues 8 -emit http://127.0.0.1:8711   # stream QoE into qoeserve
//	qoefleet -ues 64 -cells 4             # sharded multi-cell grid, parallel kernels
//	qoefleet -ues 64 -cells 4 -mobility 20  # UEs drive at 20 m/s, handovers emerge
//	qoefleet -throttle 280e3 -remedy      # closed-loop remediation under a carrier throttle
//	qoefleet -config scen.json -ues 32    # scenario from JSON; flags override the file
//	cat scen.json | qoefleet -config -    # ... or from stdin
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"time"

	"repro/internal/cliconfig"
	"repro/internal/core/analyzer"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/qoestore"
	"repro/internal/radio"
)

// stdin is the reader behind `-config -`, swappable in tests.
var stdin io.Reader = os.Stdin

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintf(os.Stderr, "qoefleet: %v\n", err)
		}
		os.Exit(1)
	}
}

// newLogger builds the structured JSON logger on w, or a discard logger
// for level "off" so call sites stay unconditional. Human-readable status
// lines stay on stdout; slog records go to stderr for machines.
func newLogger(w io.Writer, level string) (*slog.Logger, error) {
	if level == "off" {
		return slog.New(slog.NewJSONHandler(io.Discard, nil)), nil
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level: %w", err)
	}
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: lvl})), nil
}

func profileByName(name string) (*radio.Profile, error) {
	switch name {
	case "3g":
		return radio.Profile3G(), nil
	case "3g-simple":
		return radio.ProfileSimplified3G(), nil
	case "wifi":
		return radio.ProfileWiFi(), nil
	case "lte", "":
		return radio.ProfileLTE(), nil
	}
	return nil, fmt.Errorf("unknown network %q (lte | 3g | 3g-simple | wifi)", name)
}

// run is the testable entry point: flags from args, output on the given
// writers, errors returned instead of os.Exit, panics converted to errors.
func run(args []string, stdout, stderr io.Writer) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("internal error: %v", r)
		}
	}()

	// The config file (if any) loads first and supplies the flag defaults,
	// so explicitly passed flags override the file — standard flag parsing
	// implements the precedence.
	cfg, err := cliconfig.Load(cliconfig.PeekPath(args), stdin)
	if err != nil {
		return err
	}
	defInt := func(v, d int) int {
		if v != 0 {
			return v
		}
		return d
	}
	defStr := func(v, d string) string {
		if v != "" {
			return v
		}
		return d
	}
	defI64 := func(v, d int64) int64 {
		if v != 0 {
			return v
		}
		return d
	}
	defDur := func(v cliconfig.Duration, d time.Duration) time.Duration {
		if v != 0 {
			return time.Duration(v)
		}
		return d
	}

	fs := flag.NewFlagSet("qoefleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.String("config", "", `JSON scenario config ("-" = stdin); flags override file values`)
	ues := fs.Int("ues", defInt(cfg.UEs, 8), "number of UEs sharing the cell")
	policy := fs.String("policy", defStr(cfg.Policy, "rr"), "cell scheduler: rr (round-robin) | pf (proportional fair)")
	workload := fs.String("workload", defStr(cfg.Workload, "browse"), "workload: youtube | browse | facebook")
	network := fs.String("network", defStr(cfg.Network, "lte"), "lte | 3g | 3g-simple | wifi")
	seed := fs.Int64("seed", defI64(cfg.Seed, 1), "simulation seed")
	horizon := fs.Duration("horizon", defDur(cfg.Horizon, 10*time.Minute), "virtual-time run length")
	gains := fs.String("gains", cfg.Gains, "linear link-quality spread lo:hi across UEs (default: all 1)")
	cells := fs.Int("cells", defInt(cfg.Cells, 1), "number of cells (grid topology; >1 shards the run, one kernel per cell)")
	mobility := fs.Float64("mobility", cfg.MobilityMps, "UE speed in m/s across the topology (0 = static; requires -cells > 1)")
	x2 := fs.Duration("x2", time.Duration(cfg.X2Latency), "inter-cell X2 latency: handover forwarding delay and shard lookahead window (0 = 10ms; requires -cells > 1)")
	workers := fs.Int("workers", cfg.Workers, "shard worker goroutines (0 = GOMAXPROCS; results identical at any count; requires -cells > 1)")
	throttle := fs.Float64("throttle", cfg.ThrottleBps, "per-UE downlink carrier throttle in bit/s (0 = none)")
	remedyOn := fs.Bool("remedy", cfg.Remedy != nil, "enable the closed-loop remediation controller")
	remedyObserve := fs.Bool("remedy-observe", cfg.Remedy != nil && cfg.Remedy.Observe, "diagnose without actuating (requires -remedy)")
	engine := fs.String("analyzer", defStr(cfg.Analyzer, "parallel"), "analyzer engine: parallel | serial")
	traceOut := fs.String("trace", "", "write a merged Chrome trace (one process per UE) to this file")
	emit := fs.String("emit", "", "stream QoE events to a qoeserve URL (e.g. http://127.0.0.1:8711)")
	emitSource := fs.String("emit-source", "", "source name for emitted events (default fleet-<seed>)")
	logLevel := fs.String("log-level", "off", "structured JSON log level on stderr: debug|info|warn|error|off")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	logger, err := newLogger(stderr, *logLevel)
	if err != nil {
		return err
	}

	if *ues <= 0 {
		return fmt.Errorf("-ues must be positive, got %d", *ues)
	}
	if *horizon <= 0 {
		return fmt.Errorf("-horizon must be positive, got %v", *horizon)
	}
	pol, err := radio.ParsePolicy(*policy)
	if err != nil {
		return err
	}
	wl, err := fleet.ParseWorkload(*workload)
	if err != nil {
		return err
	}
	prof, err := profileByName(*network)
	if err != nil {
		return err
	}

	specs := fleet.UniformUEs(*ues)
	if *gains != "" {
		var lo, hi float64
		if _, err := fmt.Sscanf(strings.Replace(*gains, ":", " ", 1), "%g %g", &lo, &hi); err != nil || lo <= 0 || hi <= 0 {
			return fmt.Errorf("bad -gains %q (want lo:hi, both positive)", *gains)
		}
		fleet.SpreadGains(specs, lo, hi)
	}

	opts := []fleet.Option{fleet.WithHorizon(*horizon)}
	switch *engine {
	case "parallel", "":
		opts = append(opts, fleet.WithEngine(analyzer.EngineParallel))
	case "serial":
		opts = append(opts, fleet.WithEngine(analyzer.EngineSerial))
	default:
		return fmt.Errorf("unknown analyzer engine %q (parallel | serial)", *engine)
	}
	if *traceOut != "" || *emit != "" {
		opts = append(opts, fleet.WithTrace())
	}

	if *cells < 1 {
		return fmt.Errorf("-cells must be at least 1, got %d", *cells)
	}
	if *mobility < 0 {
		return fmt.Errorf("-mobility must not be negative, got %v", *mobility)
	}
	if *mobility > 0 && *cells < 2 {
		return fmt.Errorf("-mobility needs a multi-cell topology (-cells > 1)")
	}
	if *x2 < 0 {
		return fmt.Errorf("-x2 must not be negative, got %v", *x2)
	}
	// Options that only mean something on a sharded multi-cell run are
	// rejected, not silently ignored, in single-cell mode.
	if *cells < 2 && *x2 != 0 {
		return fmt.Errorf("-x2 needs a multi-cell topology (-cells > 1)")
	}
	if *cells < 2 && *workers != 0 {
		return fmt.Errorf("-workers needs a multi-cell topology (-cells > 1); a single-cell run has one kernel")
	}
	if *throttle < 0 {
		return fmt.Errorf("-throttle must not be negative, got %v", *throttle)
	}
	if explicit["remedy-observe"] && *remedyObserve && !*remedyOn {
		return fmt.Errorf("-remedy-observe requires -remedy")
	}
	if *emitSource != "" && *emit == "" {
		return fmt.Errorf("-emit-source requires -emit")
	}

	if *throttle > 0 {
		for i := range specs {
			specs[i].ThrottleBps = *throttle
		}
	}

	scen := fleet.Scenario{
		Seed:     *seed,
		Cell:     fleet.CellSpec{Profile: prof, Policy: pol},
		UEs:      specs,
		Workload: wl,
	}
	if *remedyOn {
		spec := cfg.Remedy.Spec()
		if spec == nil {
			spec = &fleet.RemedySpec{}
		}
		spec.Observe = *remedyObserve
		scen.Remedy = spec
	}
	if *cells > 1 {
		scen.Topology = &fleet.TopologySpec{Cells: *cells, X2Latency: *x2}
		opts = append(opts, fleet.WithWorkers(*workers))
	}
	if *mobility > 0 {
		scen.Mobility = &fleet.MobilitySpec{SpeedMps: *mobility}
	}
	f, err := fleet.Build(scen, opts...)
	if err != nil {
		return err
	}
	logger.Info("fleet built", "ues", *ues, "cells", *cells, "policy", *policy, "workload", *workload,
		"network", *network, "seed", *seed, "horizon", horizon.String())
	f.Drive()
	f.RunTo(*horizon)
	f.CloseObs()
	report := f.Report()
	logger.Info("run complete", "ues", len(report.UEs), "virtual_time", horizon.String())
	fmt.Fprint(stdout, report.Render())

	if *traceOut != "" {
		procs := make([]obs.Process, len(f.UEs))
		total := 0
		for i, ue := range f.UEs {
			procs[i] = obs.Process{Pid: i + 1, Name: ue.Name, Events: ue.Trace.Events()}
			total += len(procs[i].Events)
		}
		if err := writeFile(*traceOut, func(w io.Writer) error { return obs.WriteChromeTraceMulti(w, procs) }); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d trace events (%d UE processes) to %s\n", total, len(procs), *traceOut)
	}

	if *emit != "" {
		source := *emitSource
		if source == "" {
			source = fmt.Sprintf("fleet-%d", *seed)
		}
		em, err := qoestore.NewEmitter(&qoestore.HTTPIngestor{BaseURL: strings.TrimRight(*emit, "/")}, qoestore.EmitterConfig{Source: source})
		if err != nil {
			return err
		}
		n := fleet.EmitReport(em, f, report)
		em.Close()
		st := em.Stats()
		logger.Info("emitted", "events", n, "collector", *emit, "source", source,
			"delivered", st.Delivered, "dropped", st.DroppedQ+st.DroppedRe, "retries", st.Retries, "shed", st.Shed)
		fmt.Fprintf(stdout, "emitted %d QoE events to %s as %q: %d delivered, %d dropped (queue %d, retries %d), %d shed by store\n",
			n, *emit, source, st.Delivered, st.DroppedQ+st.DroppedRe, st.DroppedQ, st.Retries, st.Shed)
		if st.Delivered == 0 && n > 0 {
			return fmt.Errorf("emitted 0 of %d events to %s (is qoeserve running?)", n, *emit)
		}
	}
	return nil
}

// writeFile creates path and writes it with fn, reporting any error with
// the path attached.
func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = fn(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}
