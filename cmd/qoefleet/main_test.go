package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/qoestore"
)

func runErr(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errw bytes.Buffer
	err := run(args, &out, &errw)
	return out.String(), err
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown flag", []string{"-bogus"}, ""},
		{"positional args", []string{"extra"}, "unexpected arguments"},
		{"zero ues", []string{"-ues", "0"}, "-ues must be positive"},
		{"negative horizon", []string{"-horizon", "-1s"}, "-horizon must be positive"},
		{"bad policy", []string{"-policy", "fifo"}, ""},
		{"bad workload", []string{"-workload", "gaming"}, ""},
		{"bad network", []string{"-network", "5g"}, "unknown network"},
		{"bad gains", []string{"-gains", "fast"}, "bad -gains"},
		{"negative gains", []string{"-gains", "-1:2"}, "bad -gains"},
		{"bad engine", []string{"-analyzer", "quantum"}, "unknown analyzer engine"},
		{"zero cells", []string{"-cells", "0"}, "-cells must be at least 1"},
		{"negative mobility", []string{"-mobility", "-3"}, "-mobility must not be negative"},
		{"mobility without cells", []string{"-mobility", "10"}, "-mobility needs a multi-cell topology"},
		{"negative x2", []string{"-cells", "2", "-x2", "-1ms"}, "-x2 must not be negative"},
		{"x2 without cells", []string{"-x2", "5ms"}, "-x2 needs a multi-cell topology"},
		{"workers without cells", []string{"-workers", "2"}, "-workers needs a multi-cell topology"},
		{"negative throttle", []string{"-throttle", "-1"}, "-throttle must not be negative"},
		{"remedy-observe without remedy", []string{"-remedy-observe"}, "-remedy-observe requires -remedy"},
		{"emit-source without emit", []string{"-emit-source", "x"}, "-emit-source requires -emit"},
		{"missing config", []string{"-config", "/no/such/scen.json"}, ""},
	}
	for _, c := range cases {
		_, err := runErr(t, c.args...)
		if err == nil {
			t.Fatalf("%s: run accepted %q", c.name, c.args)
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error = %q, want %q in it", c.name, err, c.want)
		}
	}
}

// TestRunConfigFileProvidesDefaults: a -config file supplies the scenario,
// explicit flags override individual values, and "-config -" reads the same
// scenario from stdin.
func TestRunConfigFileProvidesDefaults(t *testing.T) {
	cfgJSON := `{"seed": 5, "ues": 2, "horizon": "45s", "workload": "browse"}`
	path := filepath.Join(t.TempDir(), "scen.json")
	if err := os.WriteFile(path, []byte(cfgJSON), 0o644); err != nil {
		t.Fatal(err)
	}

	fromFile, err := runErr(t, "-config", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fromFile, "2 UE(s)") || !strings.Contains(fromFile, "seed 5") {
		t.Fatalf("config values not applied:\n%s", fromFile)
	}

	over, err := runErr(t, "-config", path, "-ues", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(over, "3 UE(s)") || !strings.Contains(over, "seed 5") {
		t.Fatalf("-ues did not override the file (or clobbered its seed):\n%s", over)
	}

	old := stdin
	stdin = strings.NewReader(cfgJSON)
	defer func() { stdin = old }()
	fromStdin, err := runErr(t, "-config", "-")
	if err != nil {
		t.Fatal(err)
	}
	if fromStdin != fromFile {
		t.Fatalf("stdin config diverged from file config:\n--- file ---\n%s\n--- stdin ---\n%s", fromFile, fromStdin)
	}
}

// TestRunConfigRemedy: a remedy block in the config turns the controller on
// (the report grows its Remediation section); -remedy=false on the command
// line overrides the file and turns it back off.
func TestRunConfigRemedy(t *testing.T) {
	cfgJSON := `{"seed": 7, "ues": 3, "horizon": "4m", "workload": "youtube", "throttle_bps": 280000, "remedy": {}}`
	path := filepath.Join(t.TempDir(), "scen.json")
	if err := os.WriteFile(path, []byte(cfgJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	on, err := runErr(t, "-config", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(on, "== Remediation:") {
		t.Fatalf("config remedy block did not enable the controller:\n%s", on)
	}
	off, err := runErr(t, "-config", path, "-remedy=false")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(off, "== Remediation:") {
		t.Fatalf("-remedy=false did not override the config file:\n%s", off)
	}
}

func TestRunHelpIsNotAnInternalError(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-h"}, &out, &errw); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
}

func TestRunUnwritableTracePathFailsCleanly(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "trace.json")
	_, err := runErr(t, "-ues", "1", "-horizon", "45s", "-trace", bad)
	if err == nil {
		t.Fatal("unwritable -trace path accepted")
	}
	if strings.Contains(err.Error(), "internal error") {
		t.Fatalf("file error surfaced as a panic: %v", err)
	}
}

// TestRunEmitsIntoLiveCollector is the end-to-end pipe the README
// advertises: a small fleet run streams its QoE events into a real
// qoestore-backed HTTP collector, and the events are queryable afterwards.
func TestRunEmitsIntoLiveCollector(t *testing.T) {
	s, err := qoestore.Open(t.TempDir(), qoestore.Config{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(qoestore.NewServer(s, qoestore.ServerConfig{}).Handler())
	defer ts.Close()

	out, err := runErr(t, "-ues", "2", "-horizon", "90s", "-emit", ts.URL, "-emit-source", "itest")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "emitted") {
		t.Fatalf("stdout missing emit summary:\n%s", out)
	}
	res, err := s.Run(qoestore.Query{Metric: "rrc_energy_j"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 2 {
		t.Fatalf("collector holds %d per-UE energy events, want 2", res.Count)
	}
}

// TestRunEmitToRejectingCollectorFails: a collector that rejects every
// batch (permanent 4xx) must surface as a CLI error, not a silent success.
func TestRunEmitToRejectingCollectorFails(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusBadRequest)
	}))
	defer ts.Close()
	_, err := runErr(t, "-ues", "1", "-horizon", "45s", "-emit", ts.URL)
	if err == nil {
		t.Fatal("run succeeded despite delivering nothing")
	}
	if !strings.Contains(err.Error(), "emitted 0 of") {
		t.Fatalf("error = %q, want undelivered-events report", err)
	}
}

// TestRunStructuredLogs: -log-level info emits JSON records on stderr while
// the human-readable report stays on stdout.
func TestRunStructuredLogs(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-ues", "1", "-horizon", "45s", "-log-level", "info"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fleet") && out.Len() == 0 {
		t.Fatal("report missing from stdout")
	}
	dec := json.NewDecoder(&errw)
	msgs := map[string]bool{}
	for dec.More() {
		var rec map[string]any
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("stderr is not a JSON record stream: %v", err)
		}
		if m, _ := rec["msg"].(string); m != "" {
			msgs[m] = true
		}
	}
	for _, want := range []string{"fleet built", "run complete"} {
		if !msgs[want] {
			t.Fatalf("no %q log record; got %v", want, msgs)
		}
	}
}

// TestRunMultiCellMobility: the sharded path through the CLI — a multi-cell
// mobile fleet renders the per-cell report columns and is byte-identical
// across worker counts.
func TestRunMultiCellMobility(t *testing.T) {
	args := func(workers string) []string {
		return []string{"-ues", "6", "-cells", "4", "-mobility", "20", "-policy", "pf",
			"-horizon", "90s", "-seed", "3", "-workers", workers}
	}
	serial, err := runErr(t, args("1")...)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(serial, "across 4 cells") || !strings.Contains(serial, "Cell") {
		t.Fatalf("multi-cell report columns missing:\n%s", serial)
	}
	parallel, err := runErr(t, args("4")...)
	if err != nil {
		t.Fatal(err)
	}
	if parallel != serial {
		t.Fatalf("-workers changed the report:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", serial, parallel)
	}
}

func TestRunBadLogLevel(t *testing.T) {
	if _, err := runErr(t, "-ues", "1", "-log-level", "loud"); err == nil || !strings.Contains(err.Error(), "-log-level") {
		t.Fatalf("bad -log-level accepted: %v", err)
	}
}
