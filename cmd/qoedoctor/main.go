// Command qoedoctor runs one QoE measurement scenario end-to-end on the
// simulated testbed — the equivalent of deploying the paper's tool against
// a phone: the QoE-aware UI controller replays a user behaviour while
// tcpdump and QxDM log below it, then the multi-layer analyzer prints the
// per-layer report.
//
// Usage:
//
//	qoedoctor -scenario facebook-post   [-network lte|3g|3g-simple|wifi]
//	qoedoctor -scenario facebook-update
//	qoedoctor -scenario youtube         [-throttle 128000]
//	qoedoctor -scenario browse
//	qoedoctor -pcap trace.pcap -qxdm radio.json   # save raw logs
//	qoedoctor -trace run.json -report             # cross-layer trace + metrics
//
// -analyzer selects the cross-layer analyzer engine: the default "parallel"
// runs the indexed concurrent pipeline; "serial" runs the single-threaded
// reference implementation (their output is byte-identical).
//
// -trace writes the run's cross-layer span trace as Chrome trace_event JSON
// (open in chrome://tracing or Perfetto, one track per layer); -trace-csv
// writes the same events as CSV. -report prints the metrics registry
// snapshot as a table, -report-json writes it as NDJSON. -profile prints
// wall-clock time per kernel callback site (simulation hot paths; the one
// non-deterministic output).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/apps/facebook"
	"repro/internal/apps/serversim"
	"repro/internal/core/analyzer"
	"repro/internal/core/controller"
	"repro/internal/core/qoe"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/radio"
	"repro/internal/testbed"
)

func profileByName(name string) *radio.Profile {
	switch name {
	case "3g":
		return radio.Profile3G()
	case "3g-simple":
		return radio.ProfileSimplified3G()
	case "wifi":
		return radio.ProfileWiFi()
	case "lte", "":
		return radio.ProfileLTE()
	}
	fmt.Fprintf(os.Stderr, "qoedoctor: unknown network %q\n", name)
	os.Exit(1)
	return nil
}

func main() {
	scenario := flag.String("scenario", "facebook-post", "facebook-post | facebook-update | youtube | browse")
	specPath := flag.String("spec", "", "JSON control specification to replay instead of a built-in scenario")
	network := flag.String("network", "lte", "lte | 3g | 3g-simple | wifi")
	throttle := flag.Float64("throttle", 0, "downlink throttle in bps (0 = none)")
	seed := flag.Int64("seed", 1, "simulation seed")
	reps := flag.Int("reps", 5, "repetitions of the replayed behaviour")
	pcapOut := flag.String("pcap", "", "write the captured trace to this libpcap file")
	qxdmOut := flag.String("qxdm", "", "write the radio log to this JSON file")
	loss := flag.Float64("loss", 0, "mean packet loss probability to inject (0 = none)")
	lossBurst := flag.Float64("loss-burst", 1, "average loss burst length (1 = independent losses, >1 = Gilbert-Elliott bursts)")
	outageAt := flag.Duration("outage-at", 0, "schedule a bearer outage at this virtual time")
	outageDur := flag.Duration("outage-dur", 0, "bearer outage duration (0 = no outage)")
	traceOut := flag.String("trace", "", "write the cross-layer trace to this Chrome trace_event JSON file")
	traceCSV := flag.String("trace-csv", "", "write the cross-layer trace to this CSV file")
	doReport := flag.Bool("report", false, "print the metrics registry snapshot as a table")
	reportJSON := flag.String("report-json", "", "write the metrics snapshot as NDJSON to this file (\"-\" = stdout)")
	doProfile := flag.Bool("profile", false, "print wall-clock time per kernel callback site")
	engine := flag.String("analyzer", "parallel", "analyzer engine: parallel (indexed, concurrent stages) | serial (reference)")
	flag.Parse()

	var engineOpt analyzer.Option
	switch *engine {
	case "parallel", "":
		engineOpt = analyzer.WithEngine(analyzer.EngineParallel)
	case "serial":
		engineOpt = analyzer.WithEngine(analyzer.EngineSerial)
	default:
		fmt.Fprintf(os.Stderr, "qoedoctor: unknown analyzer engine %q (parallel | serial)\n", *engine)
		os.Exit(1)
	}

	plan := &faults.Plan{}
	if *loss > 0 {
		if *lossBurst > 1 {
			ge := faults.GEForMeanLoss(*loss, *lossBurst)
			plan.GE = &ge
		} else {
			plan.LossProb = *loss
		}
	}
	if *outageDur > 0 {
		plan.Outages = []faults.Outage{{Start: *outageAt, Duration: *outageDur}}
	}

	b, err := testbed.New(testbed.Options{
		Seed:        *seed,
		Profile:     profileByName(*network),
		Faults:      plan,
		ThrottleBps: *throttle,
		Trace:       *traceOut != "" || *traceCSV != "",
		Metrics:     *doReport || *reportJSON != "",
		Profiler:    *doProfile,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoedoctor: %v\n", err)
		os.Exit(1)
	}
	log := &qoe.BehaviorLog{}

	if *specPath != "" {
		runSpec(b, log, *specPath)
	} else {
		switch *scenario {
		case "facebook-post":
			runFacebookPost(b, log, *reps)
		case "facebook-update":
			runFacebookUpdate(b, log, *reps)
		case "youtube":
			runYouTube(b, log, *reps)
		case "browse":
			runBrowse(b, log, *reps)
		default:
			fmt.Fprintf(os.Stderr, "qoedoctor: unknown scenario %q\n", *scenario)
			os.Exit(1)
		}
	}

	b.CloseObs()
	report(b, log, *doReport, engineOpt)

	if *traceOut != "" {
		writeOrDie(*traceOut, func(w io.Writer) error { return obs.WriteChromeTrace(w, b.Trace.Events()) })
		fmt.Printf("wrote %d trace events to %s\n", b.Trace.Len(), *traceOut)
	}
	if *traceCSV != "" {
		writeOrDie(*traceCSV, func(w io.Writer) error { return obs.WriteCSV(w, b.Trace.Events()) })
		fmt.Printf("wrote %d trace events to %s\n", b.Trace.Len(), *traceCSV)
	}
	if *reportJSON != "" {
		snap := b.Metrics.Snapshot()
		if *reportJSON == "-" {
			if err := snap.WriteNDJSON(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "qoedoctor: writing report: %v\n", err)
				os.Exit(1)
			}
		} else {
			writeOrDie(*reportJSON, snap.WriteNDJSON)
		}
	}
	if *doProfile {
		fmt.Println("\n== Kernel wall-clock profile (non-deterministic) ==")
		fmt.Print(b.Profiler.Report(15))
	}
	if *pcapOut != "" {
		if err := b.Capture.WriteFile(*pcapOut); err != nil {
			fmt.Fprintf(os.Stderr, "qoedoctor: writing pcap: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d captured frames to %s\n", b.Capture.Len(), *pcapOut)
	}
	if *qxdmOut != "" && b.QxDM != nil {
		if err := b.QxDM.Log().WriteFile(*qxdmOut); err != nil {
			fmt.Fprintf(os.Stderr, "qoedoctor: writing qxdm log: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote radio log (%d PDUs) to %s\n", len(b.QxDM.Log().PDUs), *qxdmOut)
	}
}

// runSpec replays a user-authored control specification (§4.1) across all
// three apps.
func runSpec(b *testbed.Bed, log *qoe.BehaviorLog, path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoedoctor: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	spec, err := controller.ParseSpec(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoedoctor: %v\n", err)
		os.Exit(1)
	}
	b.Facebook.Connect()
	b.YouTube.Connect()
	b.K.RunUntil(3 * time.Second)
	fbCtl := controller.New(b.K, b.Facebook.Screen, log)
	ytCtl := controller.New(b.K, b.YouTube.Screen, log)
	ytCtl.Timeout = time.Hour
	ytCtl.Instrumentation().SetPollInterval(100 * time.Millisecond)
	brCtl := controller.New(b.K, b.Browser.Screen, log)
	script, err := spec.Compile(controller.Drivers{
		Facebook: controller.NewFacebookDriver(fbCtl, false),
		YouTube:  &controller.YouTubeDriver{C: ytCtl, SkipAds: true},
		Browser:  &controller.BrowserDriver{C: brCtl},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoedoctor: %v\n", err)
		os.Exit(1)
	}
	done := false
	script.Play(b.K, func() { done = true })
	b.K.RunUntil(b.K.Now() + 4*time.Hour)
	if !done {
		fmt.Fprintln(os.Stderr, "qoedoctor: warning: spec replay did not finish within the time horizon")
	}
}

func runFacebookPost(b *testbed.Bed, log *qoe.BehaviorLog, reps int) {
	b.Facebook.Connect()
	b.K.RunUntil(3 * time.Second)
	c := controller.New(b.K, b.Facebook.Screen, log)
	d := controller.NewFacebookDriver(c, false)
	kinds := []string{facebook.PostStatus, facebook.PostCheckin, facebook.PostPhotos}
	var run func(i int)
	run = func(i int) {
		if i >= reps*len(kinds) {
			return
		}
		d.UploadPost(kinds[i%len(kinds)], i, func(qoe.BehaviorEntry) {
			b.K.After(2*time.Second, func() { run(i + 1) })
		})
	}
	run(0)
	b.K.RunUntil(b.K.Now() + time.Duration(reps)*2*time.Minute)
}

func runFacebookUpdate(b *testbed.Bed, log *qoe.BehaviorLog, reps int) {
	b.Facebook.Connect()
	b.K.RunUntil(3 * time.Second)
	c := controller.New(b.K, b.Facebook.Screen, log)
	d := controller.NewFacebookDriver(c, false)
	var run func(i int)
	run = func(i int) {
		if i >= reps {
			return
		}
		d.PullToUpdate(func(qoe.BehaviorEntry) {
			b.K.After(5*time.Second, func() { run(i + 1) })
		})
	}
	run(0)
	b.K.RunUntil(b.K.Now() + time.Duration(reps)*time.Minute)
}

func runYouTube(b *testbed.Bed, log *qoe.BehaviorLog, reps int) {
	b.YouTube.Connect()
	b.K.RunUntil(2 * time.Second)
	c := controller.New(b.K, b.YouTube.Screen, log)
	c.Timeout = time.Hour
	c.Instrumentation().SetPollInterval(100 * time.Millisecond)
	d := &controller.YouTubeDriver{C: c}
	var run func(i int)
	run = func(i int) {
		if i >= reps {
			return
		}
		kw := string(rune('a' + i%26))
		d.SearchAndPlay(kw, i%10, func(controller.WatchStats) {
			b.K.After(3*time.Second, func() { run(i + 1) })
		})
	}
	run(0)
	b.K.RunUntil(b.K.Now() + time.Duration(reps)*30*time.Minute)
}

func runBrowse(b *testbed.Bed, log *qoe.BehaviorLog, reps int) {
	c := controller.New(b.K, b.Browser.Screen, log)
	d := &controller.BrowserDriver{C: c}
	urls := make([]string, reps)
	for i := range urls {
		urls[i] = fmt.Sprintf("%s/page-%d", serversim.WebHostBase, i)
	}
	d.LoadPages(urls, 10*time.Second, nil)
	b.K.RunUntil(time.Duration(reps) * 2 * time.Minute)
}

// report prints the multi-layer analysis.
func report(b *testbed.Bed, log *qoe.BehaviorLog, showMetrics bool, engineOpt analyzer.Option) {
	sess := b.Session(log)
	app := analyzer.AnalyzeApp(log)
	cl := analyzer.NewCrossLayer(sess, engineOpt)

	// Surface analyzer data-quality warnings in the default output and the
	// metrics snapshot; previously only the faults experiment looked at them.
	if n := len(cl.Warnings); n > 0 {
		fmt.Printf("analyzer: %d warning(s) (first: %s)\n", n, cl.Warnings[0])
		for _, w := range cl.Warnings {
			fmt.Printf("  warning: %s\n", w)
		}
	}
	b.Metrics.Counter("analyzer_warnings").Add(len(cl.Warnings))
	if b.FaultUL != nil {
		fmt.Printf("fault injection: %d UL + %d DL packets dropped; %d bearer outage(s)\n",
			b.FaultUL.Dropped(), b.FaultDL.Dropped(), b.Net.Bearer.OutageCount())
	}

	fmt.Println("== Application layer (user-perceived latency) ==")
	tbl := &metrics.Table{Headers: []string{"App", "Action", "Kind", "Raw", "Calibrated", "Device", "Network", "Flow host"}}
	for _, l := range app.Latencies {
		s := cl.SplitDeviceNetwork(l)
		host := ""
		if s.Flow != nil {
			host = s.Flow.Host
		}
		tbl.AddRow(l.Entry.App, l.Entry.Action, l.Entry.Kind.String(),
			fmt.Sprintf("%.3fs", l.Raw.Seconds()), fmt.Sprintf("%.3fs", l.Calibrated.Seconds()),
			fmt.Sprintf("%.3fs", s.Device.Seconds()), fmt.Sprintf("%.3fs", s.Network.Seconds()), host)
	}
	fmt.Print(tbl.String())

	fmt.Println("\n== Transport/network layer ==")
	ftbl := &metrics.Table{Headers: []string{"Flow", "Host", "UL bytes", "DL bytes", "Retx", "Mean RTT"}}
	for _, f := range cl.Flows.Flows {
		ftbl.AddRow(fmt.Sprintf("%s > %s", f.Device, f.Server), f.Host,
			fmt.Sprintf("%d", f.ULBytes), fmt.Sprintf("%d", f.DLBytes),
			fmt.Sprintf("%d", f.Retransmissions), fmt.Sprintf("%.0fms", f.MeanRTT().Seconds()*1000))
	}
	fmt.Print(ftbl.String())

	if sess.Radio != nil {
		fmt.Println("\n== RRC/RLC layer ==")
		fmt.Printf("RRC transitions: %d; data PDUs: %d; STATUS PDUs: %d\n",
			len(sess.Radio.Transitions), len(sess.Radio.PDUs), len(sess.Radio.Statuses))
		fmt.Printf("IP-to-RLC mapping: UL %.2f%%, DL %.2f%%\n", 100*cl.ULMap.Ratio(), 100*cl.DLMap.Ratio())
		rep := power.Analyze(sess.Profile, sess.Radio, 0, b.K.Now())
		fmt.Printf("Radio energy: %.1f J active (%.1f J tail, %.1f J transfer) + %.1f J idle floor\n",
			rep.ActiveJ(), rep.TailJ, rep.NonTailJ, rep.BaseJ)
	}

	if showMetrics {
		fmt.Println("\n== Metrics ==")
		mtbl := &metrics.Table{Headers: []string{"Metric", "Kind", "Value", "Count"}}
		for _, row := range b.Metrics.Snapshot().Rows() {
			mtbl.AddRow(row[0], row[1], row[2], row[3])
		}
		fmt.Print(mtbl.String())
	}
}

// writeOrDie creates path and writes it with fn, exiting on any error.
func writeOrDie(path string, fn func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoedoctor: %v\n", err)
		os.Exit(1)
	}
	err = fn(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoedoctor: writing %s: %v\n", path, err)
		os.Exit(1)
	}
}
