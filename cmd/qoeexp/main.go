// Command qoeexp runs the paper-reproduction experiments: every table and
// figure of QoE Doctor's evaluation (§7), regenerated on the simulated
// testbed.
//
// Usage:
//
//	qoeexp -list                      # show the experiment index (Table 2)
//	qoeexp -run fig7 [-seed N]        # run one experiment
//	qoeexp -all [-seed N]             # run everything in paper order
//	qoeexp -all -parallel 0           # ... on all cores (0 = GOMAXPROCS)
//	qoeexp -all -seeds 42..49         # ... across a seed grid
//	qoeexp -run remedy -ues 12        # scenario knobs override paper defaults
//	qoeexp -run fleet -config s.json  # ... or load them from JSON ("-" = stdin)
//
// Cells of the (experiment × seed) grid are independent — each builds its
// own simulation kernel — so -parallel changes wall-clock time only; the
// output is byte-identical to a serial run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"time"

	"repro/internal/cliconfig"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/sweep"
)

// newLogger builds the structured JSON logger on w, or a discard logger
// for level "off" so call sites stay unconditional. Tables stay on stdout;
// slog records go to stderr for machines.
func newLogger(w io.Writer, level string) (*slog.Logger, error) {
	if level == "off" {
		return slog.New(slog.NewJSONHandler(io.Discard, nil)), nil
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level: %w", err)
	}
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: lvl})), nil
}

// stdin is the reader behind `-config -`, swappable in tests.
var stdin io.Reader = os.Stdin

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintf(os.Stderr, "qoeexp: %v\n", err)
		}
		os.Exit(1)
	}
}

// run is the testable entry point: flags from args, output on the given
// writers, errors returned instead of os.Exit, panics converted to errors.
func run(args []string, stdout, stderr io.Writer) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("internal error: %v", r)
		}
	}()

	// The config file (if any) loads first and supplies the flag defaults,
	// so explicitly passed flags override the file.
	cfg, err := cliconfig.Load(cliconfig.PeekPath(args), stdin)
	if err != nil {
		return err
	}
	defSeed := cfg.Seed
	if defSeed == 0 {
		defSeed = 42
	}

	fs := flag.NewFlagSet("qoeexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.String("config", "", `JSON scenario config ("-" = stdin); flags override file values`)
	list := fs.Bool("list", false, "list experiments")
	runID := fs.String("run", "", "experiment id to run (e.g. fig7, table3, sec7.7)")
	all := fs.Bool("all", false, "run every experiment")
	seed := fs.Int64("seed", defSeed, "simulation seed")
	seeds := fs.String("seeds", "", "seed grid, e.g. 42..49 or 1,5,9 (overrides -seed)")
	parallel := fs.Int("parallel", 1, "worker count for the sweep; 0 = GOMAXPROCS")
	horizon := fs.Duration("horizon", time.Duration(cfg.Horizon), "override the experiment's virtual-time horizon (0 = paper default)")
	ues := fs.Int("ues", cfg.UEs, "override the fleet population of multi-UE experiments (0 = paper default)")
	cells := fs.Int("cells", cfg.Cells, "override the topology size of multi-cell experiments (0 = paper default)")
	speed := fs.Float64("speed", cfg.MobilityMps, "override the mobility speed (m/s) of handover experiments (0 = paper default)")
	loss := fs.Float64("loss", cfg.LossRate, "override the injected mean loss rate of impairment experiments (0 = paper sweep)")
	throttle := fs.Float64("throttle", cfg.ThrottleBps, "override the carrier throttle rate (bit/s) of throttling experiments (0 = paper sweep)")
	remedyOn := fs.Bool("remedy", cfg.Remedy != nil, "put the remediation controller in the loop for experiments that support it")
	remedyObserve := fs.Bool("remedy-observe", cfg.Remedy != nil && cfg.Remedy.Observe, "diagnose without actuating (requires -remedy)")
	logLevel := fs.String("log-level", "off", "structured JSON log level on stderr: debug|info|warn|error|off")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if *parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0, got %d", *parallel)
	}
	if *horizon < 0 || *ues < 0 || *cells < 0 || *speed < 0 || *loss < 0 || *throttle < 0 {
		return fmt.Errorf("scenario overrides must not be negative")
	}
	if *loss >= 1 {
		return fmt.Errorf("-loss is a rate, want < 1, got %v", *loss)
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if explicit["remedy-observe"] && *remedyObserve && !*remedyOn {
		return fmt.Errorf("-remedy-observe requires -remedy")
	}
	if *list && (explicit["ues"] || explicit["horizon"] || explicit["cells"] ||
		explicit["speed"] || explicit["loss"] || explicit["throttle"] || explicit["remedy"]) {
		return fmt.Errorf("-list takes no scenario overrides")
	}
	params := experiments.Params{
		Horizon:     *horizon,
		UEs:         *ues,
		Cells:       *cells,
		SpeedMps:    *speed,
		LossRate:    *loss,
		ThrottleBps: *throttle,
	}
	if *remedyOn {
		spec := cfg.Remedy.Spec()
		if spec == nil {
			spec = &fleet.RemedySpec{}
		}
		spec.Observe = *remedyObserve
		params.Remedy = spec
	}
	logger, err := newLogger(stderr, *logLevel)
	if err != nil {
		return err
	}

	grid := []int64{*seed}
	if *seeds != "" {
		grid, err = sweep.ParseSeeds(*seeds)
		if err != nil {
			return err
		}
	}

	switch {
	case *list:
		tbl := &metrics.Table{
			Title:   "Experiment index (paper Table 2 + §7.1)",
			Headers: []string{"ID", "Artifact", "Goal"},
		}
		for _, e := range experiments.Registry() {
			tbl.AddRow(e.ID, e.Title, e.Goal)
		}
		fmt.Fprint(stdout, tbl.String())
		return nil
	case *runID != "":
		e, ok := experiments.Lookup(*runID)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *runID)
		}
		if len(grid) == 1 && *parallel == 1 {
			logger.Info("experiment start", "id", e.ID, "seed", grid[0])
			fmt.Fprint(stdout, e.Run(grid[0], params).Render())
			logger.Info("experiment done", "id", e.ID, "seed", grid[0])
			return nil
		}
		return runSweep(stdout, logger, withParams(sweep.Grid([]experiments.Experiment{e}, grid), params), *parallel, len(grid) > 1)
	case *all:
		return runSweep(stdout, logger, withParams(sweep.Grid(experiments.Registry(), grid), params), *parallel, len(grid) > 1)
	default:
		fs.Usage()
		return flag.ErrHelp
	}
}

// withParams stamps the scenario knobs onto every grid cell.
func withParams(cells []sweep.Cell, p experiments.Params) []sweep.Cell {
	for i := range cells {
		cells[i].Params = p
	}
	return cells
}

func runSweep(stdout io.Writer, logger *slog.Logger, cells []sweep.Cell, workers int, showSeed bool) error {
	// Stream results as cells finish: the grid-order prefix prints while
	// later cells are still simulating, and the total output stays
	// byte-identical to a post-hoc Render.
	logger.Info("sweep start", "cells", len(cells), "workers", workers)
	st := sweep.NewStream(stdout, showSeed)
	// OnDone is serialized by the sweep, so logging from it is safe.
	results := sweep.Run(cells, sweep.Options{Workers: workers, OnDone: func(r sweep.Result) {
		if r.Err != nil {
			logger.Error("cell failed", "id", r.Exp.ID, "seed", r.Seed, "elapsed", r.Elapsed.String(), "err", r.Err.Error())
		} else {
			logger.Info("cell done", "id", r.Exp.ID, "seed", r.Seed, "elapsed", r.Elapsed.String())
		}
		st.Push(r)
	}})
	failed := sweep.Failed(results)
	logger.Info("sweep done", "cells", len(cells), "failed", failed)
	if failed > 0 {
		return fmt.Errorf("%d of %d cells failed", failed, len(cells))
	}
	return nil
}
