// Command qoeexp runs the paper-reproduction experiments: every table and
// figure of QoE Doctor's evaluation (§7), regenerated on the simulated
// testbed.
//
// Usage:
//
//	qoeexp -list                 # show the experiment index (Table 2)
//	qoeexp -run fig7 [-seed N]   # run one experiment
//	qoeexp -all [-seed N]        # run everything in paper order
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	list := flag.Bool("list", false, "list experiments")
	runID := flag.String("run", "", "experiment id to run (e.g. fig7, table3, sec7.7)")
	all := flag.Bool("all", false, "run every experiment")
	seed := flag.Int64("seed", 42, "simulation seed")
	flag.Parse()

	switch {
	case *list:
		tbl := &metrics.Table{
			Title:   "Experiment index (paper Table 2 + §7.1)",
			Headers: []string{"ID", "Artifact", "Goal"},
		}
		for _, e := range experiments.Registry() {
			tbl.AddRow(e.ID, e.Title, e.Goal)
		}
		fmt.Print(tbl.String())
	case *runID != "":
		e, ok := experiments.Lookup(*runID)
		if !ok {
			fmt.Fprintf(os.Stderr, "qoeexp: unknown experiment %q (try -list)\n", *runID)
			os.Exit(1)
		}
		fmt.Print(e.Run(*seed).Render())
	case *all:
		for _, e := range experiments.Registry() {
			fmt.Print(e.Run(*seed).Render())
			fmt.Println()
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
