// Command qoeexp runs the paper-reproduction experiments: every table and
// figure of QoE Doctor's evaluation (§7), regenerated on the simulated
// testbed.
//
// Usage:
//
//	qoeexp -list                      # show the experiment index (Table 2)
//	qoeexp -run fig7 [-seed N]        # run one experiment
//	qoeexp -all [-seed N]             # run everything in paper order
//	qoeexp -all -parallel 0           # ... on all cores (0 = GOMAXPROCS)
//	qoeexp -all -seeds 42..49         # ... across a seed grid
//
// Cells of the (experiment × seed) grid are independent — each builds its
// own simulation kernel — so -parallel changes wall-clock time only; the
// output is byte-identical to a serial run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintf(os.Stderr, "qoeexp: %v\n", err)
		}
		os.Exit(1)
	}
}

// run is the testable entry point: flags from args, output on the given
// writers, errors returned instead of os.Exit, panics converted to errors.
func run(args []string, stdout, stderr io.Writer) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("internal error: %v", r)
		}
	}()

	fs := flag.NewFlagSet("qoeexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list experiments")
	runID := fs.String("run", "", "experiment id to run (e.g. fig7, table3, sec7.7)")
	all := fs.Bool("all", false, "run every experiment")
	seed := fs.Int64("seed", 42, "simulation seed")
	seeds := fs.String("seeds", "", "seed grid, e.g. 42..49 or 1,5,9 (overrides -seed)")
	parallel := fs.Int("parallel", 1, "worker count for the sweep; 0 = GOMAXPROCS")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if *parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0, got %d", *parallel)
	}

	grid := []int64{*seed}
	if *seeds != "" {
		grid, err = sweep.ParseSeeds(*seeds)
		if err != nil {
			return err
		}
	}

	switch {
	case *list:
		tbl := &metrics.Table{
			Title:   "Experiment index (paper Table 2 + §7.1)",
			Headers: []string{"ID", "Artifact", "Goal"},
		}
		for _, e := range experiments.Registry() {
			tbl.AddRow(e.ID, e.Title, e.Goal)
		}
		fmt.Fprint(stdout, tbl.String())
		return nil
	case *runID != "":
		e, ok := experiments.Lookup(*runID)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *runID)
		}
		if len(grid) == 1 && *parallel == 1 {
			fmt.Fprint(stdout, e.Run(grid[0]).Render())
			return nil
		}
		return runSweep(stdout, sweep.Grid([]experiments.Experiment{e}, grid), *parallel, len(grid) > 1)
	case *all:
		return runSweep(stdout, sweep.Grid(experiments.Registry(), grid), *parallel, len(grid) > 1)
	default:
		fs.Usage()
		return flag.ErrHelp
	}
}

func runSweep(stdout io.Writer, cells []sweep.Cell, workers int, showSeed bool) error {
	// Stream results as cells finish: the grid-order prefix prints while
	// later cells are still simulating, and the total output stays
	// byte-identical to a post-hoc Render.
	st := sweep.NewStream(stdout, showSeed)
	results := sweep.Run(cells, sweep.Options{Workers: workers, OnDone: st.Push})
	if n := sweep.Failed(results); n > 0 {
		return fmt.Errorf("%d of %d cells failed", n, len(cells))
	}
	return nil
}
