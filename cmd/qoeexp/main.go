// Command qoeexp runs the paper-reproduction experiments: every table and
// figure of QoE Doctor's evaluation (§7), regenerated on the simulated
// testbed.
//
// Usage:
//
//	qoeexp -list                      # show the experiment index (Table 2)
//	qoeexp -run fig7 [-seed N]        # run one experiment
//	qoeexp -all [-seed N]             # run everything in paper order
//	qoeexp -all -parallel 0           # ... on all cores (0 = GOMAXPROCS)
//	qoeexp -all -seeds 42..49         # ... across a seed grid
//
// Cells of the (experiment × seed) grid are independent — each builds its
// own simulation kernel — so -parallel changes wall-clock time only; the
// output is byte-identical to a serial run.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sweep"
)

func main() {
	list := flag.Bool("list", false, "list experiments")
	runID := flag.String("run", "", "experiment id to run (e.g. fig7, table3, sec7.7)")
	all := flag.Bool("all", false, "run every experiment")
	seed := flag.Int64("seed", 42, "simulation seed")
	seeds := flag.String("seeds", "", "seed grid, e.g. 42..49 or 1,5,9 (overrides -seed)")
	parallel := flag.Int("parallel", 1, "worker count for the sweep; 0 = GOMAXPROCS")
	flag.Parse()

	grid := []int64{*seed}
	if *seeds != "" {
		var err error
		grid, err = sweep.ParseSeeds(*seeds)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qoeexp: %v\n", err)
			os.Exit(1)
		}
	}

	switch {
	case *list:
		tbl := &metrics.Table{
			Title:   "Experiment index (paper Table 2 + §7.1)",
			Headers: []string{"ID", "Artifact", "Goal"},
		}
		for _, e := range experiments.Registry() {
			tbl.AddRow(e.ID, e.Title, e.Goal)
		}
		fmt.Print(tbl.String())
	case *runID != "":
		e, ok := experiments.Lookup(*runID)
		if !ok {
			fmt.Fprintf(os.Stderr, "qoeexp: unknown experiment %q (try -list)\n", *runID)
			os.Exit(1)
		}
		if len(grid) == 1 && *parallel == 1 {
			fmt.Print(e.Run(grid[0]).Render())
			return
		}
		runSweep(sweep.Grid([]experiments.Experiment{e}, grid), *parallel, len(grid) > 1)
	case *all:
		runSweep(sweep.Grid(experiments.Registry(), grid), *parallel, len(grid) > 1)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runSweep(cells []sweep.Cell, workers int, showSeed bool) {
	// Stream results as cells finish: the grid-order prefix prints while
	// later cells are still simulating, and the total output stays
	// byte-identical to a post-hoc Render.
	st := sweep.NewStream(os.Stdout, showSeed)
	results := sweep.Run(cells, sweep.Options{Workers: workers, OnDone: st.Push})
	if n := sweep.Failed(results); n > 0 {
		fmt.Fprintf(os.Stderr, "qoeexp: %d of %d cells failed\n", n, len(cells))
		os.Exit(1)
	}
}
