package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runErr(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errw bytes.Buffer
	err := run(args, &out, &errw)
	return out.String(), err
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown flag", []string{"-bogus"}, ""},
		{"positional args", []string{"fig7"}, "unexpected arguments"},
		{"unknown experiment", []string{"-run", "fig99"}, "unknown experiment"},
		{"bad seeds", []string{"-all", "-seeds", "abc"}, ""},
		{"inverted seed range", []string{"-all", "-seeds", "9..1"}, ""},
		{"negative parallel", []string{"-all", "-parallel", "-2"}, "-parallel must be >= 0"},
		{"negative override", []string{"-run", "fig7", "-ues", "-1"}, "must not be negative"},
		{"loss not a rate", []string{"-run", "fig7", "-loss", "1.5"}, "-loss is a rate"},
		{"remedy-observe without remedy", []string{"-run", "remedy", "-remedy-observe"}, "-remedy-observe requires -remedy"},
		{"list with overrides", []string{"-list", "-ues", "4"}, "-list takes no scenario overrides"},
		{"missing config", []string{"-list", "-config", "/no/such/scen.json"}, ""},
	}
	for _, c := range cases {
		_, err := runErr(t, c.args...)
		if err == nil {
			t.Fatalf("%s: run accepted %q", c.name, c.args)
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error = %q, want %q in it", c.name, err, c.want)
		}
	}
}

// TestRunConfigEquivalentToFlags: running with a -config file is
// byte-identical to spelling the same scenario as flags, and actually
// changes the result relative to the paper defaults.
func TestRunConfigEquivalentToFlags(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scen.json")
	if err := os.WriteFile(path, []byte(`{"seed": 5, "ues": 3, "horizon": "2m"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	fromCfg, err := runErr(t, "-run", "fleet", "-config", path)
	if err != nil {
		t.Fatal(err)
	}
	fromFlags, err := runErr(t, "-run", "fleet", "-seed", "5", "-ues", "3", "-horizon", "2m")
	if err != nil {
		t.Fatal(err)
	}
	if fromCfg != fromFlags {
		t.Fatalf("config and flags diverged:\n--- config ---\n%s\n--- flags ---\n%s", fromCfg, fromFlags)
	}
	defaults, err := runErr(t, "-run", "fleet", "-seed", "5", "-horizon", "2m")
	if err != nil {
		t.Fatal(err)
	}
	if defaults == fromCfg {
		t.Fatal("config file had no observable effect on the experiment")
	}
}

func TestRunNoModeShowsUsage(t *testing.T) {
	var out, errw bytes.Buffer
	err := run(nil, &out, &errw)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("no mode returned %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(errw.String(), "-list") {
		t.Fatal("usage text does not mention -list")
	}
}

func TestRunListPrintsRegistry(t *testing.T) {
	out, err := runErr(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Experiment index", "fig7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list output missing %q:\n%s", want, out)
		}
	}
}

// TestSweepStructuredLogs: a sweep with -log-level info emits per-cell JSON
// records on stderr while the tables stay byte-stable on stdout.
func TestSweepStructuredLogs(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-run", "fig7", "-seeds", "42,43", "-log-level", "info"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&errw)
	cells := 0
	var sweepDone bool
	for dec.More() {
		var rec map[string]any
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("stderr is not a JSON record stream: %v", err)
		}
		switch rec["msg"] {
		case "cell done":
			cells++
		case "sweep done":
			sweepDone = true
		}
	}
	if cells != 2 || !sweepDone {
		t.Fatalf("cell done = %d (want 2), sweep done = %v", cells, sweepDone)
	}
}

func TestRunBadLogLevel(t *testing.T) {
	if _, err := runErr(t, "-list", "-log-level", "loud"); err == nil || !strings.Contains(err.Error(), "-log-level") {
		t.Fatalf("bad -log-level accepted: %v", err)
	}
}
