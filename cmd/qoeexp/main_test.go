package main

import (
	"bytes"
	"errors"
	"flag"
	"strings"
	"testing"
)

func runErr(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errw bytes.Buffer
	err := run(args, &out, &errw)
	return out.String(), err
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown flag", []string{"-bogus"}, ""},
		{"positional args", []string{"fig7"}, "unexpected arguments"},
		{"unknown experiment", []string{"-run", "fig99"}, "unknown experiment"},
		{"bad seeds", []string{"-all", "-seeds", "abc"}, ""},
		{"inverted seed range", []string{"-all", "-seeds", "9..1"}, ""},
		{"negative parallel", []string{"-all", "-parallel", "-2"}, "-parallel must be >= 0"},
	}
	for _, c := range cases {
		_, err := runErr(t, c.args...)
		if err == nil {
			t.Fatalf("%s: run accepted %q", c.name, c.args)
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error = %q, want %q in it", c.name, err, c.want)
		}
	}
}

func TestRunNoModeShowsUsage(t *testing.T) {
	var out, errw bytes.Buffer
	err := run(nil, &out, &errw)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("no mode returned %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(errw.String(), "-list") {
		t.Fatal("usage text does not mention -list")
	}
}

func TestRunListPrintsRegistry(t *testing.T) {
	out, err := runErr(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Experiment index", "fig7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list output missing %q:\n%s", want, out)
		}
	}
}
