// Command qoeserve is the fleet QoE collector: a crash-safe store of QoE
// events behind an HTTP/JSON API. Fleet runs (qoefleet -emit) stream
// per-action and per-UE summary events in; dashboards and scripts query
// windowed percentiles out. Ingest is durable (WAL with group commit; an
// acked event survives a SIGKILL) and the server degrades instead of
// falling over: full queues push back with 429, sustained overload flips
// the store to sampled coarse-bin mode, and the query path sheds load past
// a concurrency bound.
//
// With -slo the collector also runs the qoemon burn-rate engine: /slo,
// /alerts and /attrib serve deterministic SLO status, active alerts (with
// cross-layer attribution naming the responsible layer), and per-series
// layer breakdowns. -debug-addr binds a second listener with pprof and Go
// runtime metrics; /metricz?format=prometheus serves the registry in the
// Prometheus text exposition format.
//
// Usage:
//
//	qoeserve -dir /var/lib/qoe            # serve on 127.0.0.1:8711
//	qoeserve -dir ./qoe -addr :9000 -window 1m -retain 240
//	qoeserve -dir ./qoe -slo 'rebuffer_ratio p95 < 0.02' -debug-addr 127.0.0.1:6060
//	curl 'localhost:8711/query?metric=pageload_s&q=0.5,0.95,0.99'
//	curl 'localhost:8711/alerts'
//	curl 'localhost:8711/metricz?format=prometheus'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/qoemon"
	"repro/internal/qoestore"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil, nil); err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintf(os.Stderr, "qoeserve: %v\n", err)
		}
		os.Exit(1)
	}
}

// run is the testable entry point: flags from args, output on the given
// writers, errors returned instead of os.Exit. When ready is non-nil the
// bound listen address is sent on it once the server accepts connections;
// closing stop (when non-nil) triggers the same graceful shutdown as
// SIGINT/SIGTERM. A panic anywhere below becomes an error, never a crash
// with a half-synced store.
func run(args []string, stdout, stderr io.Writer, ready chan<- string, stop <-chan struct{}) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("internal error: %v", r)
		}
	}()

	fs := flag.NewFlagSet("qoeserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "store directory (WAL segments live here; required)")
	addr := fs.String("addr", "127.0.0.1:8711", "HTTP listen address")
	window := fs.Duration("window", time.Minute, "aggregation window size")
	retain := fs.Int("retain", 240, "windows retained per series key")
	queue := fs.Int("queue", 256, "ingest queue depth (backpressure past this)")
	nosync := fs.Bool("nosync", false, "skip fsync on commit (benchmarks only; crash safety off)")
	maxQ := fs.Int("max-queries", 16, "concurrent query bound (load shed past this)")
	qTimeout := fs.Duration("query-timeout", 2*time.Second, "per-query wall-time bound")
	logLevel := fs.String("log-level", "info", "structured log level on stderr: debug|info|warn|error|off")
	debugAddr := fs.String("debug-addr", "", "optional second listener with pprof and Go runtime metrics")
	var slos []qoemon.SLO
	fs.Func("slo", "SLO spec \"[name:] <metric> p<q> < <threshold>\" (repeatable); enables /slo /alerts /attrib", func(s string) error {
		slo, err := qoemon.ParseSLO(s)
		if err != nil {
			return err
		}
		slos = append(slos, slo)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if *dir == "" {
		return errors.New("-dir is required")
	}
	if *window <= 0 {
		return fmt.Errorf("-window must be positive, got %v", *window)
	}
	if *retain <= 0 {
		return fmt.Errorf("-retain must be positive, got %d", *retain)
	}
	if *queue <= 0 {
		return fmt.Errorf("-queue must be positive, got %d", *queue)
	}

	// Structured service telemetry: one JSON record per request on stderr,
	// machine-parseable, separate from the human status lines on stdout.
	var logger *slog.Logger
	if *logLevel != "off" {
		var lvl slog.Level
		if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
			return fmt.Errorf("-log-level: %w", err)
		}
		logger = slog.New(slog.NewJSONHandler(stderr, &slog.HandlerOptions{Level: lvl}))
	}

	reg := obs.NewRegistry()
	store, err := qoestore.Open(*dir, qoestore.Config{
		Window: *window, Retain: *retain, QueueDepth: *queue,
		NoSync: *nosync, Metrics: reg,
	})
	if err != nil {
		return err
	}
	defer func() {
		if cerr := store.Close(); err == nil {
			err = cerr
		}
	}()
	rec := store.Recovery()
	fmt.Fprintf(stdout, "recovered %d record(s) from %d segment(s): %d applied, %d duplicate(s), %d torn byte(s) truncated, %d corrupt segment(s)\n",
		rec.Records, rec.Segments, rec.Applied, rec.Dups, rec.TornBytes, rec.CorruptSegments)

	api := qoestore.NewServer(store, qoestore.ServerConfig{
		MaxConcurrentQueries: *maxQ, QueryTimeout: *qTimeout, Metrics: reg,
		Log: logger,
	})
	mux := http.NewServeMux()
	mux.Handle("/", api.Handler())
	if len(slos) > 0 {
		monitor, err := qoemon.New(store, qoemon.Config{SLOs: slos, Metrics: reg, Log: logger})
		if err != nil {
			return err
		}
		monitor.Mount(mux)
		fmt.Fprintf(stdout, "monitoring %d SLO(s): /slo /alerts /attrib live\n", len(slos))
	}

	if *debugAddr != "" {
		// Runtime introspection stays off the service port: pprof and the
		// Go runtime gauges bind a second listener so profiling a drowning
		// collector never competes with ingest.
		obs.RegisterRuntimeMetrics(reg)
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("-debug-addr: %w", err)
		}
		defer dln.Close()
		go func() { _ = http.Serve(dln, dmux) }()
		fmt.Fprintf(stdout, "debug endpoint on http://%s/debug/pprof/\n", dln.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: mux}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		select {
		case s := <-sig:
			fmt.Fprintf(stdout, "received %v, draining\n", s)
		case <-stop:
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	fmt.Fprintf(stdout, "serving on http://%s (window %v, retain %d, queue %d)\n", ln.Addr(), *window, *retain, *queue)
	if logger != nil {
		logger.Info("serving", "addr", ln.Addr().String(), "window", window.String(),
			"retain", *retain, "queue", *queue, "slos", len(slos))
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
