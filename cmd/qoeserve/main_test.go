package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/qoestore"
)

// runErr runs the CLI against throwaway writers and returns its error.
func runErr(args ...string) error {
	var out, errw bytes.Buffer
	return run(args, &out, &errw, nil, nil)
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error; "" means any non-nil error
	}{
		{"unknown flag", []string{"-bogus"}, ""},
		{"missing dir", []string{}, "-dir is required"},
		{"positional args", []string{"-dir", t.TempDir(), "extra"}, "unexpected arguments"},
		{"zero window", []string{"-dir", t.TempDir(), "-window", "0s"}, "-window must be positive"},
		{"negative retain", []string{"-dir", t.TempDir(), "-retain", "-1"}, "-retain must be positive"},
		{"zero queue", []string{"-dir", t.TempDir(), "-queue", "0"}, "-queue must be positive"},
		{"unparseable duration", []string{"-dir", t.TempDir(), "-window", "banana"}, ""},
		{"bad listen addr", []string{"-dir", t.TempDir(), "-addr", "not an address"}, ""},
	}
	for _, c := range cases {
		err := runErr(c.args...)
		if err == nil {
			t.Fatalf("%s: run accepted %q", c.name, c.args)
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error = %q, want %q in it", c.name, err, c.want)
		}
	}
}

func TestRunHelpIsNotAnInternalError(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-h"}, &out, &errw, nil, nil)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(errw.String(), "-dir") {
		t.Fatal("usage text does not mention -dir")
	}
}

// TestRunServesIngestAndQuery boots the real server on a kernel-assigned
// port, streams a batch through the HTTP ingest path, queries it back, and
// shuts down gracefully via the stop channel.
func TestRunServesIngestAndQuery(t *testing.T) {
	dir := t.TempDir()
	var out, errw bytes.Buffer
	ready := make(chan string, 1)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-dir", dir, "-addr", "127.0.0.1:0", "-nosync"}, &out, &errw, ready, stop)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v\nstderr: %s", err, errw.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	base := "http://" + addr
	var events []qoestore.Event
	for i := 1; i <= 10; i++ {
		events = append(events, qoestore.Event{
			Source: "t", Seq: uint64(i), At: time.Duration(i) * time.Second,
			Metric: "pageload_s", Value: 2,
		})
	}
	body, _ := json.Marshal(map[string]any{"events": events})
	resp, err := http.Post(base+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d", resp.StatusCode)
	}
	qr, err := http.Get(base + "/query?metric=pageload_s")
	if err != nil {
		t.Fatal(err)
	}
	var res qoestore.QueryResult
	if err := json.NewDecoder(qr.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	qr.Body.Close()
	if res.Count != 10 {
		t.Fatalf("query count = %d, want 10", res.Count)
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v\nstderr: %s", err, errw.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server never shut down")
	}
	if !strings.Contains(out.String(), "recovered 0 record(s)") {
		t.Fatalf("stdout missing recovery line:\n%s", out.String())
	}

	// Restart over the same directory: the acked batch must be recovered.
	// (NoSync skips fsync but still writes; a graceful close flushes.)
	var out2 bytes.Buffer
	ready2 := make(chan string, 1)
	stop2 := make(chan struct{})
	done2 := make(chan error, 1)
	go func() {
		done2 <- run([]string{"-dir", dir, "-addr", "127.0.0.1:0"}, &out2, &errw, ready2, stop2)
	}()
	select {
	case <-ready2:
	case err := <-done2:
		t.Fatalf("restart exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("restart never became ready")
	}
	close(stop2)
	if err := <-done2; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2.String(), fmt.Sprintf("recovered %d record(s)", len(events))) {
		t.Fatalf("restart did not recover the WAL:\n%s", out2.String())
	}
}
