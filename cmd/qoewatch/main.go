// Command qoewatch tails a qoeserve alert feed: it polls /alerts and
// renders the active SLO alerts — severity, series key, burn rates, and
// the cross-layer attribution naming the responsible layer — reprinting
// only when the feed changes. The on-call's terminal view of the
// continuous QoE monitor.
//
// Usage:
//
//	qoewatch                               # follow 127.0.0.1:8711, poll 2s
//	qoewatch -addr http://host:9000 -once  # one snapshot, then exit
//	qoewatch -state page                   # pages only
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/qoemon"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintf(os.Stderr, "qoewatch: %v\n", err)
		}
		os.Exit(1)
	}
}

// alertsBody mirrors the /alerts response shape.
type alertsBody struct {
	WindowNS time.Duration   `json:"window_ns"`
	Alerts   []qoemon.Status `json:"alerts"`
}

// run is the testable entry point. Closing stop (when non-nil) ends a
// follow loop exactly like SIGINT.
func run(args []string, stdout, stderr io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("qoewatch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://127.0.0.1:8711", "qoeserve base URL")
	interval := fs.Duration("interval", 2*time.Second, "poll interval in follow mode")
	once := fs.Bool("once", false, "print one snapshot and exit")
	state := fs.String("state", "", "only alerts at this state (warn|page)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if *interval <= 0 {
		return fmt.Errorf("-interval must be positive, got %v", *interval)
	}
	target := strings.TrimSuffix(*addr, "/") + "/alerts"
	if *state != "" {
		target += "?state=" + url.QueryEscape(*state)
	}
	client := &http.Client{Timeout: 10 * time.Second}

	last := ""
	poll := func() error {
		body, err := fetchAlerts(client, target)
		if err != nil {
			return err
		}
		rendered := render(body)
		if rendered != last {
			fmt.Fprint(stdout, rendered)
			last = rendered
		}
		return nil
	}

	if err := poll(); err != nil {
		return err
	}
	if *once {
		return nil
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if err := poll(); err != nil {
				// A collector restart mid-tail is routine; report and keep
				// polling rather than dying on the on-call.
				fmt.Fprintf(stderr, "qoewatch: %v\n", err)
			}
		case <-sig:
			return nil
		case <-stop:
			return nil
		}
	}
}

func fetchAlerts(client *http.Client, target string) (alertsBody, error) {
	var body alertsBody
	resp, err := client.Get(target)
	if err != nil {
		return body, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return body, fmt.Errorf("GET %s: HTTP %d: %s", target, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	err = json.NewDecoder(resp.Body).Decode(&body)
	return body, err
}

// render formats one alerts snapshot. Pages sort before warns, then by
// series key, so the most urgent line is always on top.
func render(body alertsBody) string {
	var b strings.Builder
	if len(body.Alerts) == 0 {
		b.WriteString("no active alerts\n")
		return b.String()
	}
	alerts := make([]qoemon.Status, len(body.Alerts))
	copy(alerts, body.Alerts)
	sort.SliceStable(alerts, func(i, j int) bool { return alerts[i].State > alerts[j].State })
	fmt.Fprintf(&b, "== %d active alert(s) ==\n", len(alerts))
	for _, a := range alerts {
		fmt.Fprintf(&b, "%-4s %s cell=%s workload=%s", a.State, a.SLO, a.Key.Cell, a.Key.Workload)
		if a.Key.Cohort != "" {
			fmt.Fprintf(&b, " cohort=%s", a.Key.Cohort)
		}
		fmt.Fprintf(&b, " since=%s", a.Since)
		for _, burn := range a.Burns {
			if burn.Firing {
				fmt.Fprintf(&b, " burn=%.1fx/%s", burn.Short, burn.Pair.Short)
				break
			}
		}
		if a.Baseline.Regressed {
			fmt.Fprintf(&b, " baseline=%.4g>%.4g", a.Baseline.Current, a.Baseline.Limit)
		}
		if at := a.Attribution; at != nil {
			fmt.Fprintf(&b, " top=%s (app %.0f%%, radio %.0f%%, transport %.0f%%, server %.0f%%)",
				at.Top, at.App*100, at.Radio*100, at.Transport*100, at.Server*100)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
