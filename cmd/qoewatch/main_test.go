package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/qoemon"
	"repro/internal/qoestore"
)

// syncBuffer lets the test read the watcher's output while the follow
// goroutine is still writing it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// newAlertingServer builds a store + monitor stack with one paging series
// (cellA all bad in window 0) behind an httptest server — the same mux
// shape qoeserve assembles.
func newAlertingServer(t *testing.T) (*httptest.Server, *qoestore.Store) {
	t.Helper()
	s, err := qoestore.Open(t.TempDir(), qoestore.Config{Window: time.Minute, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	var evs []qoestore.Event
	for i := 0; i < 5; i++ {
		evs = append(evs, qoestore.Event{
			Source: "t", Seq: uint64(i + 1), At: time.Duration(i+1) * time.Second,
			Cell: "cellA", Workload: "youtube", Cohort: "lossy",
			Metric: "rebuffer_ratio", Value: 0.5,
		})
		evs = append(evs, qoestore.Event{
			Source: "t", Seq: uint64(i + 100), At: time.Duration(i+1) * time.Second,
			Cell: "cellA", Workload: "youtube", Cohort: "lossy",
			Metric: "attrib_radio_share", Value: 0.9,
		})
		evs = append(evs, qoestore.Event{
			Source: "t", Seq: uint64(i + 200), At: time.Duration(i+1) * time.Second,
			Cell: "cellA", Workload: "youtube", Cohort: "lossy",
			Metric: "attrib_app_share", Value: 0.1,
		})
	}
	if _, err := s.Ingest(evs); err != nil {
		t.Fatal(err)
	}
	slo, err := qoemon.ParseSLO("rebuff: rebuffer_ratio p95 < 0.02")
	if err != nil {
		t.Fatal(err)
	}
	slo.Pairs = []qoemon.BurnPair{{Short: time.Minute, Long: time.Minute, Rate: 14.4, Sev: qoemon.SevPage}}
	m, err := qoemon.New(s, qoemon.Config{SLOs: []qoemon.SLO{slo}})
	if err != nil {
		t.Fatal(err)
	}
	api := qoestore.NewServer(s, qoestore.ServerConfig{})
	mux := http.NewServeMux()
	mux.Handle("/", api.Handler())
	m.Mount(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(func() { ts.Close(); s.Close() })
	return ts, s
}

// TestOnceRendersAlerts: the one-shot mode prints the page alert with its
// series key, burn rate, and radio attribution.
func TestOnceRendersAlerts(t *testing.T) {
	ts, _ := newAlertingServer(t)
	var out, errb bytes.Buffer
	if err := run([]string{"-addr", ts.URL, "-once"}, &out, &errb, nil); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	got := out.String()
	for _, want := range []string{"1 active alert(s)", "page", "rebuff", "cell=cellA", "cohort=lossy", "top=radio", "radio 90%"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

// TestOnceNoAlerts: a filter that matches nothing renders the quiet state.
func TestOnceNoAlerts(t *testing.T) {
	ts, _ := newAlertingServer(t)
	var out bytes.Buffer
	if err := run([]string{"-addr", ts.URL, "-once", "-state", "warn"}, &out, &out, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no active alerts") {
		t.Fatalf("output = %q", out.String())
	}
}

// TestFollowTailsChanges: in follow mode the watcher prints the initial
// snapshot, stays quiet while nothing changes, and prints again when new
// events change the feed.
func TestFollowTailsChanges(t *testing.T) {
	ts, s := newAlertingServer(t)
	var out syncBuffer
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", ts.URL, "-interval", "20ms"}, &out, &out, stop)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(out.String(), "top=radio") {
		if time.Now().After(deadline) {
			t.Fatalf("initial snapshot never rendered: %q", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	first := out.String()

	// New bad windows shift the alert's burn readings → the feed changes
	// and the tail prints a fresh snapshot.
	var evs []qoestore.Event
	for i := 0; i < 5; i++ {
		evs = append(evs, qoestore.Event{
			Source: "t2", Seq: uint64(i + 1), At: 3*time.Minute + time.Duration(i+1)*time.Second,
			Cell: "cellB", Workload: "youtube", Metric: "rebuffer_ratio", Value: 0.5,
		})
	}
	if _, err := s.Ingest(evs); err != nil {
		t.Fatal(err)
	}
	for !strings.Contains(out.String(), "cell=cellB") {
		if time.Now().After(deadline) {
			t.Fatalf("tail never picked up the new alert:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(out.String(), first) {
		t.Fatal("tail overwrote instead of appending")
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-interval", "-1s", "-once"}, &out, &out, nil); err == nil {
		t.Fatal("negative interval accepted")
	}
	if err := run([]string{"extra"}, &out, &out, nil); err == nil {
		t.Fatal("positional args accepted")
	}
	if err := run([]string{"-addr", "http://127.0.0.1:1", "-once"}, &out, &out, nil); err == nil {
		t.Fatal("unreachable collector reported success")
	}
}
